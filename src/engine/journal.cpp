#include "engine/journal.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <system_error>

namespace sfly::engine {

std::pair<std::size_t, std::size_t> shard_range(std::size_t n,
                                                std::size_t index,
                                                std::size_t count) {
  if (count == 0 || index >= count)
    throw std::invalid_argument("shard_range: index must be < count");
  return {n * index / count, n * (index + 1) / count};
}

namespace {

// Minimal scanner for the flat JSON objects JsonlSink emits: string /
// number / bool / small-int-array values, no nesting beyond the shard
// pair.  Returns false on any structural problem — the caller treats the
// line as unparseable rather than guessing.
struct FlatJson {
  // Key order preserved; values are raw token slices of the line.
  std::vector<std::pair<std::string, std::string>> pairs;

  static bool scan(const std::string& line, FlatJson& out) {
    std::size_t i = 0;
    const std::size_t n = line.size();
    auto expect = [&](char c) {
      if (i >= n || line[i] != c) return false;
      ++i;
      return true;
    };
    auto scan_string = [&](std::string& raw) {
      const std::size_t start = i;
      if (!expect('"')) return false;
      while (i < n && line[i] != '"') {
        if (line[i] == '\\') {
          if (i + 1 >= n) return false;
          i += 2;
        } else {
          ++i;
        }
      }
      if (!expect('"')) return false;
      raw = line.substr(start, i - start);
      return true;
    };
    auto scan_token = [&](std::string& raw) {
      const std::size_t start = i;
      if (i < n && line[i] == '"') return scan_string(raw);
      if (i < n && line[i] == '[') {
        while (i < n && line[i] != ']') ++i;
        if (!expect(']')) return false;
      } else {
        while (i < n && line[i] != ',' && line[i] != '}') ++i;
      }
      if (i == start) return false;
      raw = line.substr(start, i - start);
      return true;
    };

    if (!expect('{')) return false;
    while (true) {
      std::string key, value;
      if (!scan_string(key)) return false;
      if (!expect(':')) return false;
      if (!scan_token(value)) return false;
      out.pairs.emplace_back(key.substr(1, key.size() - 2), std::move(value));
      if (i < n && line[i] == ',') {
        ++i;
        continue;
      }
      break;
    }
    return expect('}') && i == n;
  }

  [[nodiscard]] const std::string* raw(const std::string& key) const {
    for (const auto& [k, v] : pairs)
      if (k == key) return &v;
    return nullptr;
  }
};

// Inverse of sink.cpp's json_str escaping.
bool unescape(const std::string& raw, std::string& out) {
  if (raw.size() < 2 || raw.front() != '"' || raw.back() != '"') return false;
  for (std::size_t i = 1; i + 1 < raw.size(); ++i) {
    char c = raw[i];
    if (c != '\\') {
      out += c;
      continue;
    }
    if (++i + 1 > raw.size()) return false;
    switch (raw[i]) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'r': out += '\r'; break;
      case 'u': {
        if (i + 4 + 1 > raw.size()) return false;
        char* end = nullptr;
        const std::string hex = raw.substr(i + 1, 4);
        const long code = std::strtol(hex.c_str(), &end, 16);
        if (end != hex.c_str() + 4 || code < 0 || code > 0xff) return false;
        out += static_cast<char>(code);
        i += 4;
        break;
      }
      default: return false;
    }
  }
  return true;
}

// Typed field extraction; every getter reports absence/garbage as false
// so one || chain rejects a malformed line.
bool get_str(const FlatJson& j, const char* key, std::string& out) {
  const std::string* raw = j.raw(key);
  return raw && unescape(*raw, out);
}

bool get_f64(const FlatJson& j, const char* key, double& out) {
  const std::string* raw = j.raw(key);
  if (!raw || raw->empty()) return false;
  char* end = nullptr;
  out = std::strtod(raw->c_str(), &end);
  return end == raw->c_str() + raw->size();
}

bool get_u64(const FlatJson& j, const char* key, std::uint64_t& out) {
  const std::string* raw = j.raw(key);
  if (!raw || raw->empty() || (*raw)[0] < '0' || (*raw)[0] > '9') return false;
  char* end = nullptr;
  errno = 0;
  out = std::strtoull(raw->c_str(), &end, 10);
  return errno == 0 && end == raw->c_str() + raw->size();
}

template <typename T>
bool get_uint(const FlatJson& j, const char* key, T& out) {
  std::uint64_t v = 0;
  if (!get_u64(j, key, v)) return false;
  out = static_cast<T>(v);
  return v == static_cast<std::uint64_t>(out);
}

bool get_bool(const FlatJson& j, const char* key, bool& out) {
  const std::string* raw = j.raw(key);
  if (!raw) return false;
  if (*raw == "true") return out = true, true;
  if (*raw == "false") return out = false, true;
  return false;
}

// ok rows carry no "error" field; !ok rows must.
bool get_ok_error(const FlatJson& j, bool& ok, std::string& error) {
  if (!get_bool(j, "ok", ok)) return false;
  return ok ? j.raw("error") == nullptr : get_str(j, "error", error);
}

Kind parse_kind(const std::string& name, bool& valid) {
  for (Kind k : {Kind::kStructure, Kind::kSpectral, Kind::kSimulate,
                 Kind::kLayout})
    if (name == kind_name(k)) return k;
  valid = false;
  return Kind::kSimulate;
}

}  // namespace

std::optional<Result> CampaignJournal::parse_result(const std::string& line) {
  FlatJson j;
  if (!FlatJson::scan(line, j)) return std::nullopt;
  Result r;
  std::string kind;
  bool kind_valid = true;
  const bool fields =
      get_uint(j, "index", r.index) && get_str(j, "topology", r.topology) &&
      get_str(j, "kind", kind) && get_ok_error(j, r.ok, r.error) &&
      get_uint(j, "vertices", r.vertices) && get_uint(j, "radix", r.radix) &&
      get_bool(j, "connected", r.connected) &&
      get_f64(j, "diameter", r.diameter) &&
      get_f64(j, "mean_hops", r.mean_hops) && get_uint(j, "girth", r.girth) &&
      get_f64(j, "bisection", r.bisection) &&
      get_f64(j, "normalized_bisection", r.normalized_bisection) &&
      get_f64(j, "lambda", r.lambda) && get_f64(j, "mu1", r.mu1) &&
      get_bool(j, "ramanujan", r.ramanujan) &&
      get_f64(j, "fiedler_bisection_lb", r.fiedler_bisection_lb) &&
      get_f64(j, "max_latency_ns", r.max_latency_ns) &&
      get_f64(j, "mean_latency_ns", r.mean_latency_ns) &&
      get_f64(j, "p99_latency_ns", r.p99_latency_ns) &&
      get_f64(j, "completion_ns", r.completion_ns) &&
      get_u64(j, "messages", r.messages) &&
      get_f64(j, "mean_wire_m", r.mean_wire_m) &&
      get_f64(j, "max_wire_m", r.max_wire_m) &&
      get_u64(j, "wires_electrical", r.wires_electrical) &&
      get_u64(j, "wires_optical", r.wires_optical) &&
      get_f64(j, "power_watts", r.power_watts) &&
      get_f64(j, "mw_per_gbps", r.mw_per_gbps);
  if (!fields) return std::nullopt;
  r.kind = parse_kind(kind, kind_valid);
  if (!kind_valid) return std::nullopt;
  // The round-trip seal: a row counts as parsed only if re-serializing it
  // reproduces the line exactly (%.17g makes doubles lossless, so this
  // also certifies the parsed values are bitwise faithful).
  if (jsonl_row(r) != line + "\n") return std::nullopt;
  return r;
}

std::optional<SimResult> CampaignJournal::parse_sim_result(
    const std::string& line) {
  FlatJson j;
  if (!FlatJson::scan(line, j)) return std::nullopt;
  SimResult r;
  const bool fields =
      get_uint(j, "index", r.index) && get_str(j, "topology", r.topology) &&
      get_str(j, "label", r.label) && get_ok_error(j, r.ok, r.error) &&
      get_f64(j, "diameter", r.diameter) &&
      get_f64(j, "max_latency_ns", r.max_latency_ns) &&
      get_f64(j, "mean_latency_ns", r.mean_latency_ns) &&
      get_f64(j, "p99_latency_ns", r.p99_latency_ns) &&
      get_f64(j, "completion_ns", r.completion_ns) &&
      get_u64(j, "messages", r.messages) &&
      get_f64(j, "delivered", r.delivered) &&
      get_u64(j, "reroutes", r.reroutes) && get_u64(j, "drops", r.drops) &&
      get_f64(j, "post_churn_p99_ns", r.post_churn_p99_ns) &&
      get_u64(j, "events", r.events) && get_u64(j, "packets", r.packets);
  if (!fields) return std::nullopt;
  if (jsonl_row(r) != line + "\n") return std::nullopt;
  return r;
}

std::optional<BatchMeta> CampaignJournal::parse_meta(const std::string& line) {
  FlatJson j;
  if (!FlatJson::scan(line, j)) return std::nullopt;
  BatchMeta m;
  if (!get_str(j, "batch", m.batch) || !get_str(j, "campaign", m.campaign) ||
      !get_uint(j, "scenarios", m.scenarios))
    return std::nullopt;
  {
    std::string decl;
    if (!get_str(j, "decl", decl) || decl.size() != 16) return std::nullopt;
    char* end = nullptr;
    errno = 0;
    m.decl = std::strtoull(decl.c_str(), &end, 16);
    if (errno != 0 || end != decl.c_str() + decl.size()) return std::nullopt;
  }
  if (const std::string* shard = j.raw("shard")) {
    if (std::sscanf(shard->c_str(), "[%zu,%zu]", &m.shard_index,
                    &m.shard_count) != 2 ||
        !get_uint(j, "rows", m.rows))
      return std::nullopt;
  } else {
    m.rows = m.scenarios;
  }
  if (jsonl_meta(m) != line + "\n") return std::nullopt;
  return m;
}

CampaignJournal CampaignJournal::load(const std::string& path) {
  CampaignJournal out;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return out;  // fresh resume: nothing journaled yet
  std::string text;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);

  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) break;  // half-written tail: drop it
    const std::string line = text.substr(pos, nl - pos);
    const bool is_meta = line.rfind("{\"batch\":", 0) == 0;
    if (is_meta) {
      auto m = parse_meta(line);
      if (!m) break;  // corrupt line: only legal as the very last one
      out.segments_.push_back({*m, {}});
    } else {
      Row row;
      if (auto sr = parse_sim_result(line)) {
        row.sim = true;
        row.sim_result = std::move(*sr);
      } else if (auto r = parse_result(line)) {
        row.result = std::move(*r);
      } else {
        break;
      }
      if (out.segments_.empty())
        throw std::runtime_error(
            path + ": result rows precede any batch header — not a resumable "
                   "campaign journal (written by an older --json?)");
      row.raw = line;
      out.segments_.back().rows.push_back(std::move(row));
    }
    pos = nl + 1;
    out.valid_bytes_ = pos;
  }
  // Anything between valid_bytes_ and EOF is the kill artifact — at most
  // one (possibly newline-terminated) half-flushed line.  An unparseable
  // line with further lines after it is corruption, not truncation.
  if (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    if (nl != std::string::npos && nl + 1 != text.size())
      throw std::runtime_error(path +
                               ": unparseable line before end of journal — "
                               "refusing to resume from a corrupt file");
  }
  return out;
}

std::size_t CampaignJournal::rows() const {
  std::size_t n = 0;
  for (const auto& seg : segments_) n += seg.rows.size();
  return n;
}

void CampaignJournal::merge(const std::vector<std::string>& inputs,
                            std::FILE* out) {
  if (inputs.empty()) throw std::runtime_error("merge: no input journals");
  std::vector<CampaignJournal> shards;
  shards.reserve(inputs.size());
  for (const auto& path : inputs) {
    shards.push_back(load(path));
    if (shards.back().empty())
      throw std::runtime_error(path + ": empty or missing shard journal");
  }

  // Order the journals by their declared shard index and check the set is
  // exactly 0..K-1 of a consistent K.
  std::vector<const CampaignJournal*> by_index(inputs.size(), nullptr);
  const std::size_t count = shards[0].segments()[0].meta.shard_count;
  if (count != inputs.size())
    throw std::runtime_error(
        "merge: journals declare " + std::to_string(count) +
        " shard(s) but " + std::to_string(inputs.size()) + " were given");
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const auto& meta = shards[s].segments()[0].meta;
    if (meta.shard_count != count || meta.shard_index >= count ||
        by_index[meta.shard_index])
      throw std::runtime_error(inputs[s] + ": inconsistent or duplicate "
                                           "shard declaration");
    by_index[meta.shard_index] = &shards[s];
  }

  const std::size_t nseg = by_index[0]->segments().size();
  for (const auto* j : by_index)
    if (j->segments().size() != nseg)
      throw std::runtime_error("merge: shard journals disagree on batch "
                               "count — at least one shard is incomplete");

  for (std::size_t seg = 0; seg < nseg; ++seg) {
    BatchMeta m = by_index[0]->segments()[seg].meta;
    std::size_t next_index = 0;
    for (std::size_t s = 0; s < count; ++s) {
      const auto& sseg = by_index[s]->segments()[seg];
      if (sseg.meta.batch != m.batch || sseg.meta.campaign != m.campaign ||
          sseg.meta.scenarios != m.scenarios || sseg.meta.decl != m.decl)
        throw std::runtime_error("merge: batch " + std::to_string(seg) +
                                 " headers disagree across shards");
      const auto [lo, hi] = shard_range(m.scenarios, s, count);
      if (sseg.rows.size() != hi - lo)
        throw std::runtime_error(
            "merge: shard " + std::to_string(s) + " of batch '" + m.batch +
            "' holds " + std::to_string(sseg.rows.size()) + " of " +
            std::to_string(hi - lo) + " rows — finish or resume it first");
      if (s == 0) {
        // The unsharded header the merged stream must carry.
        m.shard_index = 0;
        m.shard_count = 1;
        m.rows = m.scenarios;
        const std::string header = jsonl_meta(m);
        if (std::fwrite(header.data(), 1, header.size(), out) !=
            header.size())
          throw std::system_error(errno, std::generic_category(),
                                  "writing merged journal");
      }
      for (const auto& row : sseg.rows) {
        const std::size_t idx =
            row.sim ? row.sim_result.index : row.result.index;
        if (idx != next_index)
          throw std::runtime_error("merge: batch '" + m.batch +
                                   "' rows are not a contiguous 0..N-1 "
                                   "sequence across shards");
        ++next_index;
        if (std::fwrite(row.raw.data(), 1, row.raw.size(), out) !=
                row.raw.size() ||
            std::fputc('\n', out) == EOF)
          throw std::system_error(errno, std::generic_category(),
                                  "writing merged journal");
      }
    }
  }
  if (std::fflush(out) != 0)
    throw std::system_error(errno, std::generic_category(),
                            "flushing merged journal");
}

}  // namespace sfly::engine
