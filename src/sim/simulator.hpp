#pragma once
// Event-driven packet-level interconnect simulator — the repository's
// stand-in for SST/macro's SNAPPR network model (see DESIGN.md).
//
// Model: store-and-forward routers with per-output-port, per-VC FIFO
// queues; credit-based flow control against finite per-input-VC buffers;
// links with configurable bandwidth and latency; NIC injection/ejection
// ports with the same bandwidth.  The virtual-channel index increases on
// every network hop (Section V-A), which makes the channel dependency
// graph acyclic and the simulation deadlock-free when the VC pool is
// sized per routing::required_vcs.
//
// Hot-path structure (DESIGN.md §4): every routing decision is one
// NextHopIndex pick (no adjacency scan, no distance-matrix probes), every
// queue probe reads a per-port running byte counter (no per-VC sum, no
// lower_bound), and the per-VC FIFOs are intrusive singly-linked lists
// threaded through the pooled Packet records — after warm-up the event
// loop performs zero allocations per simulated event.

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "graph/failures.hpp"
#include "graph/graph.hpp"
#include "routing/next_hop_index.hpp"
#include "routing/policy.hpp"
#include "routing/tables.hpp"
#include "sim/event_queue.hpp"
#include "sim/stats.hpp"

namespace sfly::sim {

struct SimConfig {
  double bandwidth_bytes_per_ns = 12.5;  // 100 Gb/s links
  double link_latency_ns = 50.0;
  double router_latency_ns = 100.0;
  double nic_latency_ns = 50.0;
  std::uint32_t concentration = 8;       // endpoints per router
  std::uint32_t vcs = 4;                 // virtual channels per port
  std::uint32_t vc_buffer_bytes = 16384; // per VC per input port (64 KB/port at 4 VCs)
  std::uint32_t packet_bytes = 4096;     // message segmentation unit
  routing::Algo algo = routing::Algo::kMinimal;
  std::uint64_t seed = 1;
};

using EndpointId = std::uint32_t;
using MessageId = std::uint32_t;

struct MessageRecord {
  EndpointId src = 0, dst = 0;
  std::uint32_t bytes = 0;
  double created_ns = 0.0;
  double delivered_ns = -1.0;
  std::uint64_t tag = 0;
};

class Simulator {
 public:
  /// Builds a private next-hop index from `tables` (one scan over every
  /// (router, dst) pair).  Callers that simulate the same topology many
  /// times should build the index once and use the sharing constructor.
  Simulator(const Graph& topo, const routing::Tables& tables, SimConfig cfg);

  /// Shares a prebuilt next-hop index (e.g. out of an engine::ArtifactCache
  /// or a core::Network); `index` must have been built over `topo`+`tables`.
  Simulator(const Graph& topo, const routing::Tables& tables,
            std::shared_ptr<const routing::NextHopIndex> index, SimConfig cfg);

  [[nodiscard]] std::uint32_t num_endpoints() const {
    return topo_.num_vertices() * cfg_.concentration;
  }
  [[nodiscard]] double now() const { return now_; }
  [[nodiscard]] const SimConfig& config() const { return cfg_; }

  /// Schedule a message; `when` must be >= now(). Returns the message id.
  MessageId send(EndpointId src, EndpointId dst, std::uint32_t bytes, double when,
                 std::uint64_t tag = 0);

  /// Called on each delivery (motifs react by issuing more sends).
  void set_delivery_callback(std::function<void(const MessageRecord&)> cb) {
    on_delivery_ = std::move(cb);
  }

  /// Process events until the queue drains or `until` is reached.
  /// Returns true if the queue drained (all traffic delivered).
  bool run(double until = std::numeric_limits<double>::infinity(),
           std::uint64_t max_events = std::numeric_limits<std::uint64_t>::max());

  [[nodiscard]] const LatencyStats& message_latency() const { return latency_; }
  [[nodiscard]] const std::vector<MessageRecord>& messages() const { return msgs_; }
  [[nodiscard]] double completion_time() const { return completion_; }
  [[nodiscard]] std::uint64_t packets_forwarded() const { return packets_forwarded_; }
  [[nodiscard]] std::uint64_t events_processed() const { return events_processed_; }

  /// Schedule a deterministic link/router churn timeline (DESIGN.md §7).
  /// Call before (or between) run()s; events land in the ordinary event
  /// queue.  When a link goes down its two directed ports stop
  /// transmitting and their queued packets re-route from the owning
  /// router (non-minimal hops when the minimal set is severed; counted
  /// drops with upstream-credit reconciliation when the destination is
  /// unreachable); recovery re-enables the ports.  A router-down event
  /// severs every incident link at once — local NIC injection/ejection
  /// keeps draining, so intra-router traffic survives.
  void inject_failures(const FailureSchedule& schedule);

  /// Packets diverted by churn: queued packets evacuated off a severed
  /// port plus per-hop decisions that left the pristine minimal set.
  [[nodiscard]] std::uint64_t packets_rerouted() const { return rerouted_; }
  /// Packets dropped because their destination router was unreachable in
  /// the live (post-churn) topology at decision time.
  [[nodiscard]] std::uint64_t packets_dropped() const { return dropped_; }
  /// Messages with at least one dropped packet (never delivered).
  [[nodiscard]] std::uint64_t messages_undeliverable() const {
    return msgs_undeliverable_;
  }
  /// Fully delivered messages (each contributes one latency sample).
  [[nodiscard]] std::uint64_t messages_delivered() const {
    return latency_.count();
  }
  /// Time of the first down event processed; +infinity when none fired.
  [[nodiscard]] double first_failure_ns() const { return first_failure_ns_; }
  /// Latency stats restricted to messages delivered at or after `t0` —
  /// the post-churn tail when t0 = first_failure_ns().
  [[nodiscard]] LatencyStats latency_since(double t0) const;

  /// Bytes currently queued across all VCs of the output port from
  /// `router` toward its neighbor `neighbor` — UGAL's congestion signal.
  /// O(1): a running per-port counter maintained by enqueue/dequeue (the
  /// vertex->port translation is the only remaining lookup; the simulator's
  /// own hot path addresses ports by slot and skips even that).
  [[nodiscard]] std::uint64_t queue_probe(Vertex router, Vertex neighbor) const;

  /// Per-network-link load: bytes forwarded over each directed router
  /// port.  The coefficient of variation quantifies hot links (the
  /// discrepancy property predicts a low CoV for SpectralFly).
  struct LinkLoad {
    double mean_bytes = 0.0;
    double max_bytes = 0.0;
    double cov = 0.0;  // stddev / mean over directed network ports
  };
  [[nodiscard]] LinkLoad link_load() const;

 private:
  static constexpr std::uint32_t kNoPort = 0xFFFFFFFF;
  static constexpr std::uint32_t kNil = 0xFFFFFFFF;  // intrusive-list null

  struct Packet {
    MessageId msg = 0;
    std::uint32_t bytes = 0;
    EndpointId dst_ep = 0;
    routing::PacketRoute route;
    std::uint8_t vc = 0;
    std::uint8_t hops = 0;
    std::uint32_t upstream_port = kNoPort;  // credit return target
    std::uint8_t upstream_vc = 0;
    std::uint32_t next_in_q = kNil;  // intrusive per-VC FIFO link
  };

  struct Port {
    Vertex to_router = 0;        // network ports
    EndpointId eject_ep = 0;     // ejection ports
    bool is_network = false;
    bool is_injection = false;
    bool retry_scheduled = false;  // at most one pending kTryTransmit
    double busy_until = 0.0;
    std::uint32_t rr = 0;          // round-robin VC scan start
    std::uint64_t total_bytes = 0; // queued bytes across VCs (queue_probe)
  };

  void handle_inject(MessageId m);
  void handle_arrival(std::uint32_t pkt, Vertex router);
  void try_transmit(std::uint32_t port);
  void handle_deliver(std::uint32_t pkt);
  void enqueue(std::uint32_t port, std::uint32_t pkt, std::uint8_t vc);
  [[nodiscard]] std::uint32_t port_toward(Vertex router, Vertex neighbor) const;
  [[nodiscard]] Vertex router_of(EndpointId ep) const {
    return static_cast<Vertex>(ep / cfg_.concentration);
  }
  std::uint32_t alloc_packet(const Packet& p);
  void free_packet(std::uint32_t id);

  // --- dynamic-fault machinery (DESIGN.md §7) --------------------------
  static constexpr std::uint16_t kUnreachable = 0xFFFF;
  // Past this many hops a churned packet routes strictly downhill on the
  // live distance field, so mixed minimal/detour decisions cannot livelock
  // (and uint8 hop counters stay far from wrapping: 64 + live diameter).
  static constexpr std::uint32_t kChurnHopLimit = 64;

  [[nodiscard]] std::uint16_t live_dist(Vertex u, Vertex v) const {
    return live_dist_[static_cast<std::size_t>(u) * topo_.num_vertices() + v];
  }
  [[nodiscard]] Vertex port_owner(std::uint32_t port) const;
  void fault_link(Vertex u, Vertex v, bool down);
  void fault_router(Vertex r, bool down);
  // Shared tail of fault_link/fault_router once port depths changed:
  // rebuild the live-distance field, then evacuate (down) or wake (up)
  // every transitioned port.
  void settle_fault(const std::uint32_t* ports, std::size_t count, bool down);
  void rebuild_live_dist();
  void evacuate_port(std::uint32_t port);
  // Churn-aware output choice from `router` (kNoPort = dst unreachable):
  // live pristine-minimal hops first, greedy live-distance descent when
  // the minimal set is severed (counted as a reroute).
  [[nodiscard]] std::uint32_t churn_output_port(Packet& pkt, Vertex router,
                                                Vertex dst_router,
                                                std::uint64_t entropy);
  void drop_packet(std::uint32_t pkt_id);
  [[nodiscard]] std::uint64_t packet_entropy(const Packet& pkt,
                                             Vertex router) const;

  const Graph& topo_;
  const routing::Tables& tables_;
  std::shared_ptr<const routing::NextHopIndex> index_;
  SimConfig cfg_;

  std::vector<Port> ports_;
  std::vector<std::uint32_t> net_port_base_;   // per router, into ports_
  std::vector<std::uint32_t> inject_port_;     // per endpoint
  std::vector<std::uint32_t> eject_port_;      // per endpoint

  // Per-(port, VC) FIFO state, flat at port * vcs + vc: intrusive list
  // head/tail into packets_ and downstream credits.  (Queued-byte totals
  // live per port — Port::total_bytes — since nothing probes per VC.)
  std::vector<std::uint32_t> q_head_;
  std::vector<std::uint32_t> q_tail_;
  std::vector<std::int64_t> credits_;  // bytes; -1 = infinite (ejection)

  std::vector<Packet> packets_;
  std::vector<std::uint32_t> free_packets_;

  std::vector<MessageRecord> msgs_;
  std::vector<std::uint32_t> msg_remaining_;   // undelivered packets per message
  std::vector<std::uint8_t> msg_failed_;       // >= 1 packet dropped

  std::vector<std::uint64_t> port_bytes_;  // forwarded bytes per port

  // Dynamic-fault state.  link_down_ is a per-port down depth (a link and
  // a router failure can overlap; the port is live iff the depth is 0) —
  // always sized, only ever nonzero after inject_failures.  The live
  // distance field (BFS over surviving links, rebuilt per churn event
  // into preallocated storage) backs non-minimal fallback routing and the
  // unreachable-destination drop decision.
  std::vector<std::uint8_t> link_down_;
  std::uint32_t down_ports_ = 0;       // network ports with depth > 0
  bool churn_enabled_ = false;
  std::vector<std::uint16_t> live_dist_;  // n*n; kUnreachable = severed
  std::vector<Vertex> bfs_queue_;
  std::vector<std::uint32_t> fault_ports_;  // scratch for settle_fault
  std::uint64_t rerouted_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t msgs_undeliverable_ = 0;
  double first_failure_ns_ = std::numeric_limits<double>::infinity();

  EventQueue events_;
  double now_ = 0.0;
  double completion_ = 0.0;
  std::uint64_t packets_forwarded_ = 0;
  std::uint64_t events_processed_ = 0;
  LatencyStats latency_;
  std::function<void(const MessageRecord&)> on_delivery_;
};

}  // namespace sfly::sim
