#include "sim/event_queue.hpp"

#include <type_traits>

// Header-only module; this TU compile-asserts the header's contracts so a
// header regression breaks the library build loudly rather than surfacing
// in whichever downstream TU happens to include it first.

namespace sfly::sim {

static_assert(std::is_trivially_copyable_v<Event>,
              "Event is copied through the heap by value");
static_assert(std::is_default_constructible_v<EventQueue>);
static_assert(sizeof(Event) <= 40, "Event should stay cache-friendly");

namespace {

// Anchor: instantiate every EventQueue member once at namespace scope so
// the definitions are compiled (and exported) from this TU.
[[maybe_unused]] bool anchor_event_queue() {
  EventQueue q;
  q.push(1.0, EventKind::kInjectMessage, 1);
  q.push(1.0, EventKind::kDeliver, 2);
  const bool fifo_at_equal_time = q.top().a == 1;
  Event e = q.pop();
  return fifo_at_equal_time && e.a == 1 && !q.empty() && q.size() == 1;
}

[[maybe_unused]] const bool anchored = anchor_event_queue();

}  // namespace
}  // namespace sfly::sim
