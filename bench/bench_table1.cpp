// Table I — basic structural properties of the five size classes:
// routers, radix, diameter, mean distance, girth, and the normalized
// Laplacian spectral gap mu1 for LPS / SlimFly / BundleFly / DragonFly.
//
// Engine-backed: each topology contributes one kStructure scenario
// (distances + girth, bisection skipped — Table I does not report a cut)
// and one kSpectral scenario, all submitted as a single batch fanned over
// --threads; the artifact cache builds each graph once for both kinds.

#include "bench_common.hpp"

using namespace sfly;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  bench::Flags::usage(
      "Table I: structural properties per size class",
      "#   --classes N  number of size classes to run (default 3, --full = 5)\n"
      "#   --threads N  engine worker threads (default: all hardware threads)");
  const std::size_t nclasses =
      flags.full() ? 5 : static_cast<std::size_t>(flags.get("--classes", 3));

  const std::size_t run_classes =
      std::min(nclasses, topo::table1_classes().size());

  engine::EngineConfig cfg;
  cfg.threads = flags.threads();
  engine::Engine eng(cfg);

  // Per topology: a kStructure scenario (even batch index) immediately
  // followed by its kSpectral partner (odd index).
  auto batch = bench::class_scenario_pairs(eng, run_classes, [](engine::Scenario& st) {
    st.bisection_restarts = 0;  // Table I reports no cut
    st.want_girth = true;
  });
  auto results = eng.run(batch);

  Table table({"Topology", "Routers", "Radix", "Diam.", "Dist.", "Girth",
               "mu1", "Ramanujan"});
  for (std::size_t c = 0; c < run_classes; ++c) {
    for (std::size_t i = 0; i < 4; ++i) {
      const auto& st = results[(c * 4 + i) * 2];
      const auto& sp = results[(c * 4 + i) * 2 + 1];
      if (!st.ok || !sp.ok) {
        table.add_row({st.topology, "ERR: " + (st.ok ? sp.error : st.error)});
        continue;
      }
      table.add_row({st.topology, std::to_string(st.vertices),
                     std::to_string(st.radix), Table::num(st.diameter, 0),
                     Table::num(st.mean_hops, 2), std::to_string(st.girth),
                     Table::num(sp.mu1, 2), sp.ramanujan ? "yes" : "no"});
    }
    if (c + 1 < run_classes) table.add_row({"---"});
  }
  table.print();
  std::printf(
      "\n# Paper anchors: LPS diam 3,3,3,4,4; girth 3,3,3,4,4; SF diam 2;\n"
      "# LPS mu1 0.50..0.80 rising with radix; DF mu1 decaying to ~0.01.\n");
  return 0;
}
