#include "graph/betweenness.hpp"

#include <algorithm>

#include "util/parallel.hpp"

namespace sfly {

std::vector<double> betweenness_centrality(const Graph& g) {
  const Vertex n = g.num_vertices();
  std::vector<double> bc(n, 0.0);

#pragma omp parallel
  {
    std::vector<double> local(n, 0.0);
    std::vector<Vertex> order;          // BFS visit order (stack for Brandes)
    std::vector<std::int32_t> dist(n);
    std::vector<double> sigma(n);       // shortest-path counts
    std::vector<double> delta(n);       // dependency accumulation
    order.reserve(n);

#pragma omp for schedule(dynamic, 8)
    for (std::int64_t s = 0; s < static_cast<std::int64_t>(n); ++s) {
      std::fill(dist.begin(), dist.end(), -1);
      std::fill(sigma.begin(), sigma.end(), 0.0);
      std::fill(delta.begin(), delta.end(), 0.0);
      order.clear();
      dist[s] = 0;
      sigma[s] = 1.0;
      order.push_back(static_cast<Vertex>(s));
      for (std::size_t head = 0; head < order.size(); ++head) {
        Vertex u = order[head];
        for (Vertex v : g.neighbors(u)) {
          if (dist[v] == -1) {
            dist[v] = dist[u] + 1;
            order.push_back(v);
          }
          if (dist[v] == dist[u] + 1) sigma[v] += sigma[u];
        }
      }
      // Dependency pass in reverse BFS order.
      for (std::size_t i = order.size(); i-- > 1;) {
        Vertex w = order[i];
        for (Vertex u : g.neighbors(w))
          if (dist[u] + 1 == dist[w])
            delta[u] += sigma[u] / sigma[w] * (1.0 + delta[w]);
        local[w] += delta[w];
      }
    }
#pragma omp critical
    for (Vertex v = 0; v < n; ++v) bc[v] += local[v];
  }
  // Each unordered pair counted from both endpoints.
  for (double& x : bc) x /= 2.0;
  return bc;
}

BetweennessSummary betweenness_summary(const Graph& g) {
  auto bc = betweenness_centrality(g);
  BetweennessSummary out;
  if (bc.empty()) return out;
  out.min = *std::min_element(bc.begin(), bc.end());
  out.max = *std::max_element(bc.begin(), bc.end());
  double sum = 0.0;
  for (double x : bc) sum += x;
  out.mean = sum / static_cast<double>(bc.size());
  out.imbalance = out.mean > 0 ? out.max / out.mean : 1.0;
  return out;
}

}  // namespace sfly
