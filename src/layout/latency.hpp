#pragma once
// Physical end-to-end latency evaluation (Fig. 11): latency-minimizing
// paths over the placed topology with 5 ns/m cable delay plus a uniform
// per-hop switch latency.

#include "graph/graph.hpp"
#include "layout/cabinets.hpp"

namespace sfly::layout {

inline constexpr double kCableDelayNsPerM = 5.0;

struct LatencyStatsPhys {
  double mean_ns = 0.0;  // over ordered vertex pairs
  double max_ns = 0.0;   // end-to-end (weighted diameter)
};

/// All-pairs minimum-latency paths (Dijkstra per source, OpenMP parallel).
/// Each hop costs wire_length * 5 ns + switch_latency_ns.
[[nodiscard]] LatencyStatsPhys physical_latency(const Graph& g,
                                                const Placement& placement,
                                                double switch_latency_ns);

}  // namespace sfly::layout
