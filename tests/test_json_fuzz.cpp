// Deterministic mutation fuzz of the service request path: every mutant
// of a valid request — truncated, byte-flipped, NUL-ridden, deeply
// nested, numerically absurd — must leave the daemon standing.  Pins:
// JsonObject::scan never crashes (it may reject), QueryEngine::handle
// never throws and always returns a well-formed answer frame (an object
// carrying "ok"), and the error counter moves only on error frames.
// Seed-driven (no libFuzzer dependency), so a failure reproduces from
// the printed seed alone.

#include "service/json.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "service/query.hpp"
#include "topo/factory.hpp"
#include "util/rng.hpp"

namespace sfly::service {
namespace {

// Valid corpus covering every handler; mutations start from bytes that
// exercise deep request-parsing paths, not just the scanner's first if.
const std::vector<std::string>& corpus() {
  static const std::vector<std::string> kCorpus = {
      R"json({"id":1,"kind":"route","topo":"Paley(13)","src":0,"dst":7,"algo":"ugal-l","seed":1})json",
      R"json({"id":2,"kind":"route","topo":"Paley(13)","src":3,"dst":9,"algo":"valiant","fail":[0,1]})json",
      R"json({"id":3,"kind":"sim","topo":"Paley(13)","pattern":"random","load":0.5,"messages":4})json",
      R"json({"id":4,"kind":"sim","topo":"Paley(13)","motif":"FFT(4,4)","compute_ns":10.5})json",
      R"json({"id":5,"kind":"rank","topos":["Paley(13)","Hypercube(4)"],"job_size":64})json",
      R"json({"id":6,"kind":"stats"})json",
      R"json({"id":7,"kind":"route","topo":"Hypercube(4)","src":15,"dst":0})json",
  };
  return kCorpus;
}

// One deterministic mutation of `s` drawn from `rng`: truncate, insert,
// replace (any byte value including NUL), duplicate a span, splice in a
// hostile token (deep nesting, huge/odd numbers, NaN/Infinity, stray
// quotes/escapes), or stack several of these.
std::string mutate(std::string s, Rng& rng) {
  static const char* kTokens[] = {
      "[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[",
      "{{{{{{{{{{{{{{{{",
      "1e309",
      "-1e-309",
      "184467440737095516150",
      "NaN",
      "Infinity",
      "-Infinity",
      "0x1p3",
      "\"",
      "\\u0000",
      "\\",
      "\x00\x01\xff",
      "}{",
      "]]]]",
      ",,,,",
      ":null:",
  };
  const int rounds = 1 + static_cast<int>(uniform_below(rng, 3));
  for (int r = 0; r < rounds; ++r) {
    switch (uniform_below(rng, 5)) {
      case 0:  // truncate
        if (!s.empty()) s.resize(uniform_below(rng, s.size() + 1));
        break;
      case 1: {  // insert a random byte (NUL included)
        const auto pos = uniform_below(rng, s.size() + 1);
        s.insert(s.begin() + static_cast<std::ptrdiff_t>(pos),
                 static_cast<char>(uniform_below(rng, 256)));
        break;
      }
      case 2:  // replace a random byte
        if (!s.empty())
          s[uniform_below(rng, s.size())] =
              static_cast<char>(uniform_below(rng, 256));
        break;
      case 3: {  // duplicate a span onto a random position
        if (s.empty()) break;
        const auto from = uniform_below(rng, s.size());
        const auto len = uniform_below(rng, s.size() - from) + 1;
        const auto to = uniform_below(rng, s.size() + 1);
        s.insert(to, s.substr(from, len));
        break;
      }
      default: {  // splice a hostile token
        const char* tok =
            kTokens[uniform_below(rng, std::size(kTokens))];
        s.insert(uniform_below(rng, s.size() + 1), tok);
        break;
      }
    }
  }
  return s;
}

// Mutation can turn a valid request into a valid-but-enormous one
// ("Hypercube(44)", "messages":44444444) — a resource bomb, not a parser
// bug, and out of scope here.  Skip mutants that would *successfully*
// register an unknown topology or inflate the cost knobs; everything
// that fails to scan, fails to parse, or stays within the corpus's small
// topologies is forwarded, so every error path is still exercised.
bool resource_safe(const std::string& req) {
  JsonObject q;
  if (!JsonObject::scan(req, q)) return true;  // will be rejected: safe
  std::vector<std::string> topos;
  std::string s;
  if (q.get_str("topo", s)) topos.push_back(s);
  std::vector<std::string> arr;
  if (q.get_str_array("topos", arr))
    topos.insert(topos.end(), arr.begin(), arr.end());
  for (const std::string& t : topos) {
    if (t == "Paley(13)" || t == "Hypercube(4)" || t == "DF(4)") continue;
    try {
      (void)topo::parse_topology(t);
      return false;  // parses to something outside the small allowlist
    } catch (...) {
      // unparsable: handle() answers an error frame, which is the point
    }
  }
  // Mutated motif geometry can explode the rank count; only the corpus
  // motif is known-small (anything unparsable errors out cheaply, but
  // telling those apart isn't worth a motif-parser duplicate here).
  if (q.get_str("motif", s) && s != "FFT(4,4)") return false;
  std::uint64_t u = 0;
  if (q.get_u64("messages", u) && u > 1000) return false;
  if (q.get_u64("nranks", u) && u > 4096) return false;
  if (q.get_u64("bytes", u) && u > (1u << 20)) return false;
  double d = 0;
  if (q.get_f64("load", d) && !(d <= 8.0)) return false;
  if (q.get_f64("compute_ns", d) && !(d <= 1e9)) return false;
  return true;
}

TEST(JsonFuzz, ScannerNeverCrashesOnMutants) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(split_seed(0xF022, seed));
    for (const std::string& base : corpus()) {
      for (int i = 0; i < 50; ++i) {
        const std::string mutant = mutate(base, rng);
        JsonObject q;
        if (!JsonObject::scan(mutant, q)) continue;  // rejection is fine
        // Accepted objects must answer accessor probes without crashing.
        std::string sv;
        std::uint64_t uv = 0;
        double dv = 0;
        bool bv = false;
        std::vector<std::uint64_t> av;
        std::vector<std::string> tv;
        for (const char* key : {"id", "kind", "topo", "src", "fail", "topos"}) {
          (void)q.has(key);
          (void)q.get_str(key, sv);
          (void)q.get_u64(key, uv);
          (void)q.get_f64(key, dv);
          (void)q.get_bool(key, bv);
          (void)q.get_u64_array(key, av);
          (void)q.get_str_array(key, tv);
        }
      }
    }
  }
}

TEST(JsonFuzz, HandleAlwaysAnswersAFrame) {
  QueryEngine engine;
  std::uint64_t answered = 0, errors_seen = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(split_seed(0xFA22, seed));
    for (const std::string& base : corpus()) {
      for (int i = 0; i < 25; ++i) {
        const std::string mutant = mutate(base, rng);
        if (!resource_safe(mutant)) continue;
        std::string resp;
        ASSERT_NO_THROW(resp = engine.handle(mutant)) << "seed=" << seed;
        ASSERT_FALSE(resp.empty()) << "seed=" << seed;
        // Every answer is an object frame that states its verdict.
        EXPECT_EQ(resp.front(), '{') << "seed=" << seed;
        EXPECT_EQ(resp.back(), '}') << "seed=" << seed;
        EXPECT_NE(resp.find("\"ok\":"), std::string::npos) << "seed=" << seed;
        ++answered;
        if (resp.find("\"ok\":false") != std::string::npos) ++errors_seen;
      }
    }
  }
  // The counters reconcile: one query per mutant, one error per error
  // frame — no double counting, no dropped accounting on any path.
  EXPECT_EQ(engine.queries(), answered);
  EXPECT_EQ(engine.errors(), errors_seen);
  // Sanity on the harness itself: mutants overwhelmingly fail, but the
  // duplicate/no-op rounds keep a few valid requests in the stream.
  EXPECT_GT(errors_seen, answered / 2);
}

TEST(JsonFuzz, HostileHandcraftedRequests) {
  QueryEngine engine;
  const std::vector<std::string> hostile = {
      "",
      "{",
      "}",
      "null",
      "[]",
      std::string(1 << 16, '['),
      "{\"kind\":\"route\"" + std::string(1000, ' '),
      std::string("{\"kind\":\"sim\",\"topo\":\"Paley(13)\",\"load\":NaN}"),
      std::string("{\"kind\":\"sim\",\"topo\":\"Paley(13)\",\"load\":1e309}"),
      std::string("{\"kind\":\"route\",\"topo\":\"Paley(13)\",\"src\":"
                  "99999999999999999999999,\"dst\":0}"),
      // embedded NUL inside the topo string ("\x00bad" would swallow
      // the following hex digits b,a into the escape — splice instead)
      [] {
        std::string s = "{\"kind\":\"route\",\"topo\":\"";
        s += '\0';
        s += "bad\",\"src\":0,\"dst\":1}";
        return s;
      }(),
      "{\"kind\":\"rank\",\"topos\":[\"Paley(13)\",42,{}]}",
      "{\"kind\":\"route\",\"topo\":\"Paley(13)\",\"src\":0,\"dst\":1}trailing",
      "{\"id\":\xff\xfe,\"kind\":\"stats\"}",
  };
  for (const std::string& req : hostile) {
    std::string resp;
    ASSERT_NO_THROW(resp = engine.handle(req));
    ASSERT_FALSE(resp.empty());
    EXPECT_EQ(resp.front(), '{');
    EXPECT_NE(resp.find("\"ok\":"), std::string::npos);
  }
}

}  // namespace
}  // namespace sfly::service
