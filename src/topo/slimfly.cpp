#include "topo/slimfly.hpp"

namespace sfly::topo {

std::vector<SlimFlyParams> slimfly_instances(std::uint64_t max_q) {
  std::vector<SlimFlyParams> out;
  for (std::uint64_t q = 3; q <= max_q; ++q) {
    SlimFlyParams params{q};
    if (params.valid()) out.push_back(params);
  }
  return out;
}

}  // namespace sfly::topo
