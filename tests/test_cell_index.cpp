// Randomized small-V equivalence harness for the hierarchical cell index:
// on graphs small enough to afford exact all-pairs tables, a cell-mode
// CellIndex (tiny forced cells, so the hierarchy is actually exercised)
// must reproduce the Tables answers exactly — distances, minimal next-hop
// sets, and the sampled next hop bit for bit.  This is the pin that lets
// the 50k+-router path ship without a 50k-router oracle.

#include "routing/cell_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "engine/artifact_cache.hpp"
#include "routing/tables.hpp"
#include "topo/factory.hpp"
#include "util/rng.hpp"

namespace sfly::routing {
namespace {

// Random connected graph: a random spanning tree (each vertex v >= 1
// attaches to a uniform earlier vertex) plus `extra` random non-loop
// edges; duplicates collapse in from_edges.
Graph random_connected_graph(Vertex n, std::size_t extra, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<Vertex, Vertex>> e;
  for (Vertex v = 1; v < n; ++v)
    e.emplace_back(v, static_cast<Vertex>(uniform_below(rng, v)));
  for (std::size_t i = 0; i < extra; ++i) {
    const Vertex u = static_cast<Vertex>(uniform_below(rng, n));
    const Vertex w = static_cast<Vertex>(uniform_below(rng, n));
    if (u != w) e.emplace_back(u, w);
  }
  return Graph::from_edges(n, std::move(e));
}

// Cell-mode options with cells far below the graph size, so every query
// crosses the boundary overlay.
CellIndex::Options tiny_cells(std::uint64_t seed = 1) {
  CellIndex::Options o;
  o.max_cell_size = 8;
  o.seed = seed;
  return o;
}

void expect_equivalent(const Graph& g, const Tables& t, const CellIndex& x) {
  const Vertex n = g.num_vertices();
  CellQuery q = x.make_query(g);
  std::vector<Vertex> want, got;
  for (Vertex dst = 0; dst < n; ++dst) {
    q.prepare(dst);
    for (Vertex u = 0; u < n; ++u) {
      ASSERT_EQ(q.distance(u), t.distance(u, dst))
          << "d(" << u << "," << dst << ")";
      t.minimal_next_hops(g, u, dst, want);
      q.minimal_next_hops(u, got);
      ASSERT_EQ(got, want) << "hops(" << u << "," << dst << ")";
      if (u == dst) continue;
      for (std::uint64_t entropy : {0ull, 1ull, 7ull, 0xDEADBEEFull})
        ASSERT_EQ(q.sample_next_hop(u, entropy),
                  t.sample_next_hop(g, u, dst, entropy))
            << "sample(" << u << "," << dst << "," << entropy << ")";
    }
  }
}

TEST(CellIndex, MatchesTablesOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Vertex n = static_cast<Vertex>(24 + 7 * seed);
    const Graph g = random_connected_graph(n, 2 * n, seed);
    const Tables t = Tables::build(g);
    const CellIndex x = CellIndex::build(g, tiny_cells(seed));
    ASSERT_FALSE(x.exact());
    ASSERT_GT(x.num_cells(), 1u);
    expect_equivalent(g, t, x);
  }
}

TEST(CellIndex, MatchesTablesOnRegisteredTopologies) {
  for (const char* spec : {"Paley(13)", "DF(4)", "Hypercube(4)"}) {
    auto parsed = topo::parse_topology(spec);
    const Graph g = parsed.build();
    const Tables t = Tables::build(g);
    const CellIndex x = CellIndex::build(g, tiny_cells());
    ASSERT_FALSE(x.exact()) << spec;
    expect_equivalent(g, t, x);
  }
}

TEST(CellIndex, SingleCellGraphStillAnswers) {
  // n <= max_cell_size: one cell, no boundary vertices, intra == exact.
  const Graph g = random_connected_graph(20, 30, 42);
  const Tables t = Tables::build(g);
  CellIndex::Options o;
  o.max_cell_size = 32;
  const CellIndex x = CellIndex::build(g, o);
  EXPECT_EQ(x.num_cells(), 1u);
  EXPECT_EQ(x.num_boundary(), 0u);
  expect_equivalent(g, t, x);
}

TEST(CellIndex, WrapExactDelegatesBitwise) {
  const Graph g = random_connected_graph(40, 80, 3);
  auto t = std::make_shared<const Tables>(Tables::build(g));
  const CellIndex x = CellIndex::wrap_exact(t);
  EXPECT_TRUE(x.exact());
  EXPECT_EQ(x.exact_tables().get(), t.get());
  EXPECT_EQ(x.memory_bytes(), 0u);
  EXPECT_EQ(x.diameter_bound(), t->diameter());
  expect_equivalent(g, *t, x);
}

TEST(CellIndex, ViewRoundTripAnswersIdentically) {
  const Graph g = random_connected_graph(50, 100, 9);
  const Tables t = Tables::build(g);
  const CellIndex built = CellIndex::build(g, tiny_cells(9));
  const CellIndex view = CellIndex::from_view(built.views());
  EXPECT_FALSE(built.is_view());
  EXPECT_TRUE(view.is_view());
  EXPECT_EQ(view.memory_bytes(), built.memory_bytes());
  expect_equivalent(g, t, view);
}

TEST(CellIndex, DiameterBoundIsAnUpperBound) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Graph g = random_connected_graph(60, 90, seed);
    const Tables t = Tables::build(g);
    const CellIndex x = CellIndex::build(g, tiny_cells(seed));
    EXPECT_GE(x.diameter_bound(), t.diameter());
  }
}

TEST(CellIndex, ThrowsOnDisconnected) {
  const Graph g = Graph::from_edges(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  EXPECT_THROW((void)CellIndex::build(g, tiny_cells()), std::runtime_error);
}

TEST(CellIndex, RejectsBadOptions) {
  const Graph g = random_connected_graph(10, 5, 1);
  CellIndex::Options o;
  o.max_cell_size = 0;
  EXPECT_THROW((void)CellIndex::build(g, o), std::invalid_argument);
  o.max_cell_size = 256;
  EXPECT_THROW((void)CellIndex::build(g, o), std::invalid_argument);
}

TEST(CellIndex, DeterministicForSeed) {
  const Graph g = random_connected_graph(64, 120, 5);
  const CellIndex a = CellIndex::build(g, tiny_cells(7));
  const CellIndex b = CellIndex::build(g, tiny_cells(7));
  const auto va = a.views();
  const auto vb = b.views();
  ASSERT_EQ(va.num_cells, vb.num_cells);
  ASSERT_EQ(va.num_boundary, vb.num_boundary);
  EXPECT_TRUE(std::equal(va.cell_of.begin(), va.cell_of.end(),
                         vb.cell_of.begin(), vb.cell_of.end()));
  EXPECT_TRUE(std::equal(va.intra.begin(), va.intra.end(), vb.intra.begin(),
                         vb.intra.end()));
  EXPECT_TRUE(std::equal(va.ov_adj.begin(), va.ov_adj.end(), vb.ov_adj.begin(),
                         vb.ov_adj.end()));
}

TEST(CellIndex, ArtifactsWrapExactBelowThreshold) {
  // Small topologies keep the exact representation behind the Artifacts
  // accessor: same Tables object, zero extra bytes, zero cell builds.
  engine::ArtifactCache cache;
  auto parsed = topo::parse_topology("Paley(13)");
  cache.register_topology(parsed.name, std::move(parsed.build));
  auto art = cache.get("Paley(13)");
  const std::uint64_t builds_before = CellIndex::builds();
  auto cell = art->cell_index();
  ASSERT_TRUE(cell->exact());
  EXPECT_EQ(cell->exact_tables().get(), art->tables().get());
  EXPECT_EQ(CellIndex::builds(), builds_before);
  EXPECT_EQ(art->footprint().cells_bytes, 0u);

  // The walk a cell-mode route would take is byte-identical to the exact
  // one — sample-by-sample over every pair at a fixed seed.
  auto g = art->graph();
  auto t = art->tables();
  CellQuery q = cell->make_query(*g);
  for (Vertex dst = 0; dst < g->num_vertices(); ++dst) {
    q.prepare(dst);
    for (Vertex u = 0; u < g->num_vertices(); ++u) {
      if (u == dst) continue;
      Vertex at_exact = u, at_cell = u;
      std::uint64_t hop = 0;
      while (at_exact != dst) {
        const std::uint64_t e = split_seed(11, hop++);
        at_exact = t->sample_next_hop(*g, at_exact, dst, e);
        at_cell = q.sample_next_hop(at_cell, e);
        ASSERT_EQ(at_cell, at_exact);
      }
    }
  }
}

}  // namespace
}  // namespace sfly::routing
