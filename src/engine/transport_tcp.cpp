#include "engine/transport_tcp.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace sfly::engine {

namespace {

void set_nonblocking(int fd) {
  const int fl = ::fcntl(fd, F_GETFL, 0);
  if (fl >= 0) ::fcntl(fd, F_SETFL, fl | O_NONBLOCK);
}

double seconds_since(std::chrono::steady_clock::time_point t) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t)
      .count();
}

}  // namespace

// --- TcpTransport (parent) --------------------------------------------------

TcpTransport::TcpTransport(Config cfg) : cfg_(std::move(cfg)) {
  ::signal(SIGPIPE, SIG_IGN);
  if (cfg_.lease_ms < 100)
    throw std::invalid_argument("--lease-ms must be >= 100");
  heartbeat_ms_ = cfg_.lease_ms / 3;
  slot_.assign(cfg_.workers, nullptr);
  slot_rows_.assign(cfg_.workers, 0);
  listen_fd_ = net::tcp_listen(cfg_.port, port_);
  if (listen_fd_ < 0)
    throw std::runtime_error("--listen: cannot bind port " +
                             std::to_string(cfg_.port));
  set_nonblocking(listen_fd_);
  std::fprintf(stderr,
               "# --listen: accepting worker connections on port %u "
               "(%zu slot(s), lease %dms)\n",
               port_, cfg_.workers, cfg_.lease_ms);
  // Scripting hook: tests and wrappers that pass --listen 0 need the
  // actual port; the notice above is for humans.
  if (const char* pf = std::getenv("SFLY_LISTEN_PORT_FILE"); pf && *pf) {
    if (std::FILE* f = std::fopen(pf, "w")) {
      std::fprintf(f, "%u\n", port_);
      std::fclose(f);
    }
  }
  if (const char* spec = std::getenv("SFLY_TCP_TEST_FENCE")) {
    long s = -1;
    unsigned long k = 0;
    if (std::sscanf(spec, "%ld:%lu", &s, &k) == 2) {
      fence_slot_ = s;
      fence_after_rows_ = static_cast<std::size_t>(k);
    }
  }
}

TcpTransport::~TcpTransport() { shutdown(); }

void TcpTransport::start(const Hooks& hooks) {
  auto bound = [&] {
    std::size_t k = 0;
    for (const auto* c : slot_) k += (c != nullptr);
    return k;
  };
  auto last_notice = std::chrono::steady_clock::now();
  while (bound() < cfg_.workers) {
    pump(200, hooks);
    // A worker can join and refuse the first batch (stale declaration)
    // while we are still assembling the fleet; the dispatcher records
    // the error and we must hand control back so it can raise it
    // instead of waiting for a fleet that will never be whole.
    if (hooks.failed && hooks.failed()) return;
    if (seconds_since(last_notice) > 5.0) {
      last_notice = std::chrono::steady_clock::now();
      std::fprintf(stderr, "# --listen: %zu/%zu worker(s) connected...\n",
                   bound(), cfg_.workers);
    }
  }
}

bool TcpTransport::up(std::size_t slot) const {
  return slot_[slot] != nullptr && !slot_[slot]->dead;
}

double TcpTransport::idle_seconds(std::size_t slot) const {
  return slot_[slot] ? seconds_since(slot_[slot]->last_heard) : 0.0;
}

void TcpTransport::queue_frame(Conn& c, net::FrameType type,
                               const std::string& payload) {
  if (c.fd < 0 || c.dead) return;
  std::string buf;
  buf.reserve(net::kFrameHeaderBytes + payload.size());
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t seq = c.next_seq_out++;
  buf.push_back(static_cast<char>((len >> 24) & 0xff));
  buf.push_back(static_cast<char>((len >> 16) & 0xff));
  buf.push_back(static_cast<char>((len >> 8) & 0xff));
  buf.push_back(static_cast<char>(len & 0xff));
  buf.push_back(static_cast<char>(type));
  buf.push_back(static_cast<char>((seq >> 24) & 0xff));
  buf.push_back(static_cast<char>((seq >> 16) & 0xff));
  buf.push_back(static_cast<char>((seq >> 8) & 0xff));
  buf.push_back(static_cast<char>(seq & 0xff));
  buf += payload;
  c.outbox += buf;
  try_flush(c);
  // A peer that stopped reading while we keep queueing is wedged; cap
  // the buffered bytes so one zombie cannot balloon the parent.
  if (c.outbox.size() > net::kMaxFramePayload) c.dead = true;
}

void TcpTransport::try_flush(Conn& c) {
  while (!c.outbox.empty()) {
    const ssize_t w = ::write(c.fd, c.outbox.data(), c.outbox.size());
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      c.dead = true;
      return;
    }
    c.outbox.erase(0, static_cast<std::size_t>(w));
  }
}

void TcpTransport::send(std::size_t slot, const std::string& bytes) {
  if (Conn* c = slot_[slot]) queue_frame(*c, net::FrameType::kData, bytes);
}

void TcpTransport::accept_new() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;
    set_nonblocking(fd);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    Conn c;
    c.fd = fd;
    c.last_heard = c.last_hb_sent = std::chrono::steady_clock::now();
    conns_.push_back(std::move(c));
  }
}

void TcpTransport::bind_worker(Conn& c, const Hooks& hooks) {
  long free_slot = -1;
  for (std::size_t wi = 0; wi < slot_.size(); ++wi) {
    if (!slot_[wi]) {
      free_slot = static_cast<long>(wi);
      break;
    }
  }
  net::Welcome w;
  if (free_slot < 0) {
    w.busy = true;
    queue_frame(c, net::FrameType::kWelcome, net::welcome_payload(w));
    c.close_when_flushed = true;
    return;
  }
  c.slot = free_slot;
  c.epoch = ++epoch_counter_;
  slot_[static_cast<std::size_t>(free_slot)] = &c;
  w.lease_ms = cfg_.lease_ms;
  w.heartbeat_ms = heartbeat_ms_;
  if (cfg_.max_seconds > 0.0)
    w.budget_seconds = std::max(0.001, cfg_.max_seconds -
                                           seconds_since(cfg_.start));
  queue_frame(c, net::FrameType::kWelcome, net::welcome_payload(w));
  std::fprintf(stderr, "# --listen: worker joined slot %ld (epoch %llu)\n",
               free_slot, static_cast<unsigned long long>(c.epoch));
  if (hooks.on_join) hooks.on_join(static_cast<std::size_t>(free_slot));
}

void TcpTransport::handle_frame(Conn& c, const net::Frame& f,
                                const Hooks& hooks) {
  c.last_heard = std::chrono::steady_clock::now();
  switch (f.type) {
    case net::FrameType::kHello: {
      int version = 0;
      std::string role;
      if (!net::parse_hello(f.payload, version, role) ||
          version != net::kProtocolVersion) {
        std::fprintf(stderr,
                     "# --listen: rejecting connection with protocol "
                     "version %d (this parent speaks %d)\n",
                     version, net::kProtocolVersion);
        c.dead = true;
        return;
      }
      if (role == "probe") {
        // A sfly_worker supervisor asking what to exec on its machine.
        net::Welcome w;
        w.exe = cfg_.exe;
        w.args = cfg_.worker_argv;
        queue_frame(c, net::FrameType::kWelcome, net::welcome_payload(w));
        c.close_when_flushed = true;
        return;
      }
      if (c.slot < 0 && !c.zombie) bind_worker(c, hooks);
      return;
    }
    case net::FrameType::kData: {
      if (c.slot < 0) {  // data before a successful hello: not ours
        c.dead = true;
        return;
      }
      if (f.seq <= c.last_seq_in) {
        // A duplicated frame (misbehaving middlebox, fault injection):
        // the sequence number catches it before any line reaches the
        // row path.
        ++dup_frames_;
        return;
      }
      c.last_seq_in = f.seq;
      const auto wi = static_cast<std::size_t>(c.slot);
      c.lines.feed(f.payload.data(), f.payload.size(),
                   [&](std::string line) {
                     if (c.zombie || slot_[wi] != &c) {
                       if (hooks.on_zombie_line) hooks.on_zombie_line(wi, line);
                     } else if (hooks.on_line) {
                       hooks.on_line(wi, line);
                     }
                   });
      return;
    }
    case net::FrameType::kHeartbeat:
      return;  // last_heard already refreshed
    case net::FrameType::kStop:
      c.said_stop = true;
      return;
    default:
      return;
  }
}

void TcpTransport::read_conn(Conn& c, const Hooks& hooks) {
  char buf[65536];
  for (;;) {
    const ssize_t rd = ::read(c.fd, buf, sizeof buf);
    if (rd < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      c.dead = true;
      break;
    }
    if (rd == 0) {  // EOF; a torn frame in c.frames is simply dropped
      c.dead = true;
      break;
    }
    c.frames.feed(buf, static_cast<std::size_t>(rd));
    net::Frame f;
    while (c.frames.next(f)) handle_frame(c, f, hooks);
    if (c.frames.corrupt()) {
      std::fprintf(stderr,
                   "# --listen: corrupt frame stream from slot %ld — "
                   "treating the connection as dead\n",
                   c.slot);
      c.dead = true;
      break;
    }
  }
}

void TcpTransport::sweep(const Hooks& hooks) {
  for (auto it = conns_.begin(); it != conns_.end();) {
    Conn& c = *it;
    if (!c.dead && c.close_when_flushed && c.outbox.empty()) c.dead = true;
    if (!c.dead) {
      ++it;
      continue;
    }
    if (c.fd >= 0) ::close(c.fd);
    c.fd = -1;
    const bool current =
        c.slot >= 0 && slot_[static_cast<std::size_t>(c.slot)] == &c;
    if (current) {
      slot_[static_cast<std::size_t>(c.slot)] = nullptr;
      if (hooks.on_down)
        hooks.on_down(static_cast<std::size_t>(c.slot), c.said_stop);
    }
    it = conns_.erase(it);
  }
}

void TcpTransport::pump(int timeout_ms, const Hooks& hooks) {
  sweep(hooks);  // reap conns killed by send() since the last pump

  std::vector<pollfd> fds;
  std::vector<Conn*> who;
  if (listen_fd_ >= 0) {
    fds.push_back({listen_fd_, POLLIN, 0});
    who.push_back(nullptr);
  }
  for (auto& c : conns_) {
    short ev = POLLIN;
    if (!c.outbox.empty()) ev |= POLLOUT;
    fds.push_back({c.fd, ev, 0});
    who.push_back(&c);
  }
  const int pr =
      ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
  if (pr < 0 && errno != EINTR)
    throw std::runtime_error("--listen: poll() failed");
  if (pr > 0) {
    for (std::size_t k = 0; k < fds.size(); ++k) {
      if (!who[k]) {
        if (fds[k].revents & POLLIN) accept_new();
        continue;
      }
      Conn& c = *who[k];
      if (c.dead) continue;
      if (fds[k].revents & POLLOUT) try_flush(c);
      if (fds[k].revents & (POLLIN | POLLHUP | POLLERR)) read_conn(c, hooks);
    }
  }

  // Keep-alives: the worker's lease logic mirrors ours, so a silent
  // parent would look like a partition.  Zombies get none — a fenced
  // worker should time out, exit 76, and reconnect for a fresh slice.
  for (auto& c : conns_) {
    if (c.dead || c.slot < 0 || c.zombie) continue;
    if (slot_[static_cast<std::size_t>(c.slot)] != &c) continue;
    if (seconds_since(c.last_hb_sent) * 1000.0 >= heartbeat_ms_) {
      c.last_hb_sent = std::chrono::steady_clock::now();
      queue_frame(c, net::FrameType::kHeartbeat, "");
    }
  }
  sweep(hooks);
}

void TcpTransport::fence(std::size_t slot) {
  Conn* c = slot_[slot];
  if (!c) return;
  c->zombie = true;
  slot_[slot] = nullptr;
}

void TcpTransport::replace(std::size_t slot, const Hooks&) {
  // Passive: fence the current epoch (if any) and let the next
  // --connect join — routed through bind_worker/on_join — take over.
  fence(slot);
}

void TcpTransport::note_row(std::size_t slot) {
  ++slot_rows_[slot];
  if (!fence_fired_ && fence_slot_ >= 0 &&
      static_cast<std::size_t>(fence_slot_) == slot &&
      slot_rows_[slot] >= fence_after_rows_) {
    fence_fired_ = true;  // test hook: deterministic zombie-epoch fencing
    std::fprintf(stderr,
                 "# --listen: test fence firing on slot %zu after %zu "
                 "row(s)\n",
                 slot, slot_rows_[slot]);
    fence(slot);
  }
}

void TcpTransport::shutdown() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // BYE tells each worker the fleet is done: its next EOF is graceful
  // (exit 75), not a lost link to reconnect across.
  for (auto& c : conns_) {
    if (c.fd < 0 || c.dead) continue;
    if (c.slot >= 0 && !c.zombie &&
        slot_[static_cast<std::size_t>(c.slot)] == &c)
      queue_frame(c, net::FrameType::kBye, "");
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  for (;;) {
    bool pending = false;
    for (auto& c : conns_) {
      if (c.fd < 0 || c.dead) continue;
      try_flush(c);
      if (!c.outbox.empty()) pending = true;
    }
    if (!pending || std::chrono::steady_clock::now() > deadline) break;
    ::poll(nullptr, 0, 10);
  }
  for (auto& c : conns_) {
    if (c.fd >= 0) ::close(c.fd);
    c.fd = -1;
  }
  conns_.clear();
  for (auto& s : slot_) s = nullptr;
}

// --- SocketChannel (worker) -------------------------------------------------

SocketChannel::SocketChannel(const Config& cfg) {
  ::signal(SIGPIPE, SIG_IGN);
  std::size_t attempts = cfg.attempts;
  std::uint64_t base_ms = cfg.backoff_base_ms;
  if (const char* e = std::getenv("SFLY_CONNECT_ATTEMPTS"); e && *e)
    attempts = static_cast<std::size_t>(std::strtoul(e, nullptr, 10));
  if (const char* e = std::getenv("SFLY_CONNECT_BASE_MS"); e && *e)
    base_ms = std::strtoull(e, nullptr, 10);
  const auto seed = static_cast<std::uint64_t>(::getpid());

  for (std::size_t k = 0;; ++k) {
    const int fd = net::tcp_connect(cfg.host, cfg.port);
    if (fd >= 0) {
      bool ok = net::send_frame(fd, net::FrameType::kHello, 1,
                                net::hello_payload("worker"));
      net::Frame f;
      // Handshake reads feed the member reader: the parent's first DATA
      // frame (slice assignment) can share a read() with the WELCOME,
      // and those buffered bytes must survive into read_line().
      frames_ = net::FrameReader{};
      if (ok && net::read_frame_blocking(fd, f, frames_, 10000) &&
          f.type == net::FrameType::kWelcome) {
        net::Welcome w;
        if (net::parse_welcome(f.payload, w) &&
            w.version == net::kProtocolVersion && !w.busy) {
          fd_ = fd;
          if (w.lease_ms > 0) lease_ms_ = w.lease_ms;
          heartbeat_ms_ =
              w.heartbeat_ms > 0 ? w.heartbeat_ms : lease_ms_ / 3;
          budget_s_ = w.budget_seconds;
          break;
        }
        // busy (all slots taken) or version skew: back off and retry —
        // a fenced slot frees up as soon as the parent notices.
      }
      ::close(fd);
    }
    if (k + 1 >= attempts)
      throw std::runtime_error("--connect: no worker slot at " + cfg.host +
                               ":" + std::to_string(cfg.port) + " after " +
                               std::to_string(attempts) + " attempts");
    const auto delay =
        net::backoff_delay_ms(k, base_ms, cfg.backoff_max_ms, seed);
    ::poll(nullptr, 0, static_cast<int>(delay));
  }

  // A wedged parent must not block us forever in write(): bound sends by
  // two leases, after which the link counts as lost (exit 76).
  timeval tv{};
  tv.tv_sec = (2 * lease_ms_) / 1000;
  tv.tv_usec = ((2 * lease_ms_) % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  last_parent_ = std::chrono::steady_clock::now();

  // Frames that rode in with the WELCOME are already complete in the
  // reader; surface them now rather than waiting for the next read().
  net::Frame pre;
  while (frames_.next(pre)) process_frame(pre);

  // Heartbeats come from their own thread so leases survive arbitrarily
  // long scenario evaluations.
  hb_thread_ = std::thread([this] {
    auto last = std::chrono::steady_clock::now();
    while (!stop_hb_.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      if (seconds_since(last) * 1000.0 < heartbeat_ms_) continue;
      last = std::chrono::steady_clock::now();
      std::lock_guard<std::mutex> lk(write_mu_);
      if (fd_ >= 0 &&
          !net::send_frame(fd_, net::FrameType::kHeartbeat, 0, ""))
        lost_.store(true, std::memory_order_relaxed);
    }
  });
}

SocketChannel::~SocketChannel() {
  stop_hb_.store(true, std::memory_order_relaxed);
  if (hb_thread_.joinable()) hb_thread_.join();
  if (fd_ >= 0) ::close(fd_);
}

void SocketChannel::process_frame(const net::Frame& f) {
  last_parent_ = std::chrono::steady_clock::now();
  switch (f.type) {
    case net::FrameType::kData:
      if (f.seq <= last_seq_in_) return;  // duplicate frame: drop
      last_seq_in_ = f.seq;
      lines_.feed(f.payload.data(), f.payload.size(),
                  [&](std::string line) { ready_.push_back(std::move(line)); });
      return;
    case net::FrameType::kBye:
      bye_ = true;
      return;
    case net::FrameType::kHeartbeat:
    default:
      return;
  }
}

bool SocketChannel::read_line(std::string& line) {
  for (;;) {
    if (!ready_.empty()) {
      line = std::move(ready_.front());
      ready_.pop_front();
      return true;
    }
    if (ended_ || bye_ || lost_.load(std::memory_order_relaxed)) return false;

    // The parent heartbeats every lease/3; silence for two full leases
    // means the link (or the parent) is gone.
    const double idle = seconds_since(last_parent_);
    const double deadline_s = 2.0 * lease_ms_ / 1000.0;
    pollfd p{fd_, POLLIN, 0};
    const int wait_ms = idle >= deadline_s
                            ? 0
                            : static_cast<int>(std::min(
                                  500.0, (deadline_s - idle) * 1000.0) +
                              1);
    const int pr = ::poll(&p, 1, wait_ms);
    if (pr < 0 && errno != EINTR) {
      lost_.store(true, std::memory_order_relaxed);
      continue;
    }
    if (pr > 0 && (p.revents & (POLLIN | POLLHUP | POLLERR))) {
      char buf[65536];
      const ssize_t rd = ::read(fd_, buf, sizeof buf);
      if (rd < 0) {
        if (errno == EINTR || errno == EAGAIN) continue;
        lost_.store(true, std::memory_order_relaxed);
        continue;
      }
      if (rd == 0) {
        // EOF: drain what already arrived, then classify via bye_.
        ended_ = true;
        continue;
      }
      frames_.feed(buf, static_cast<std::size_t>(rd));
      net::Frame f;
      while (frames_.next(f)) process_frame(f);
      if (frames_.corrupt()) lost_.store(true, std::memory_order_relaxed);
      continue;
    }
    if (seconds_since(last_parent_) >= deadline_s)
      lost_.store(true, std::memory_order_relaxed);
  }
}

void SocketChannel::write_line(const std::string& bytes) {
  std::lock_guard<std::mutex> lk(write_mu_);
  if (fd_ < 0) return;
  if (!net::send_frame(fd_, net::FrameType::kData, next_seq_out_++, bytes))
    lost_.store(true, std::memory_order_relaxed);
}

void SocketChannel::announce_stop() {
  std::lock_guard<std::mutex> lk(write_mu_);
  if (fd_ >= 0) (void)net::send_frame(fd_, net::FrameType::kStop, 0, "");
}

}  // namespace sfly::engine
