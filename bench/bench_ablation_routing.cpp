// Ablation — routing-scheme and virtual-channel design choices on
// SpectralFly (DESIGN.md §5): the paper's three schemes plus the library's
// UGAL-G and adaptive-minimal extensions, and the VC-pool sizing rule.

#include "bench_common.hpp"

using namespace sfly;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  bench::Flags::usage(
      "Ablation: routing schemes and VC sizing on SpectralFly",
      "#   --ranks N  MPI ranks (default 512)\n"
      "#   --msgs N   messages per rank (default 16)");
  const std::uint32_t nranks =
      static_cast<std::uint32_t>(flags.get("--ranks", flags.full() ? 2048 : 512));
  const std::uint32_t msgs = static_cast<std::uint32_t>(flags.get("--msgs", 16));

  auto topos = bench::simulation_topologies(false);
  const auto& sf = topos[0];  // SpectralFly

  const routing::Algo algos[] = {routing::Algo::kMinimal, routing::Algo::kAdaptiveMin,
                                 routing::Algo::kValiant, routing::Algo::kUgalL,
                                 routing::Algo::kUgalG};

  std::printf("== Routing-scheme ablation (max message time, %s pattern) ==\n",
              sim::pattern_name(sim::Pattern::kShuffle));
  Table t({"Load", "minimal", "adaptive-min", "valiant", "ugal-l", "ugal-g"});
  for (double load : {0.2, 0.4, 0.6}) {
    std::vector<std::string> row{Table::num(load, 1)};
    for (auto algo : algos)
      row.push_back(Table::num(bench::run_pattern(sf, algo, sim::Pattern::kShuffle,
                                                  load, nranks, msgs, 42) / 1000.0,
                               1));
    t.add_row(std::move(row));
  }
  t.print();
  std::printf("# (values in microseconds; lower is better)\n\n");

  // VC sizing ablation: the paper's rule (2d+1 for UGAL) vs a starved pool.
  std::printf("== VC-pool ablation (UGAL-L, bit-shuffle @ 0.5) ==\n");
  Table t2({"VCs", "Max message us"});
  core::NetworkOptions base;
  base.concentration = sf.concentration;
  base.routing = routing::Algo::kUgalL;
  auto probe_vcs = [&](std::uint32_t vcs) {
    core::NetworkOptions opts = base;
    opts.vcs = vcs;
    auto net = core::Network::from_graph(sf.name, sf.graph, opts);
    auto simulator = net.make_simulator(42);
    sim::SyntheticLoad sl;
    sl.pattern = sim::Pattern::kShuffle;
    sl.nranks = nranks;
    sl.messages_per_rank = msgs;
    sl.offered_load = 0.5;
    return run_synthetic(*simulator, sl).max_latency_ns / 1000.0;
  };
  auto net_probe = core::Network::from_graph(sf.name, sf.graph, base);
  const std::uint32_t paper_vcs = 2 * net_probe.diameter() + 1;
  for (std::uint32_t vcs : {paper_vcs, paper_vcs / 2 + 1, 2u})
    t2.add_row({std::to_string(vcs) + (vcs == paper_vcs ? " (paper rule)" : ""),
                Table::num(probe_vcs(vcs), 1)});
  t2.print();
  std::printf("# Fewer VCs than hops shares the top channel among tail hops; at\n"
              "# moderate load the effect is mild, under saturation it grows.\n");
  return 0;
}
