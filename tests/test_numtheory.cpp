#include "nt/numtheory.hpp"

#include <gtest/gtest.h>

#include <set>

namespace sfly::nt {
namespace {

TEST(NumTheory, IsPrimeSmall) {
  std::set<u64> primes = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47};
  for (u64 n = 0; n <= 50; ++n) EXPECT_EQ(is_prime(n), primes.count(n) == 1) << n;
}

TEST(NumTheory, IsPrimeLarge) {
  EXPECT_TRUE(is_prime(1'000'000'007ull));
  EXPECT_TRUE(is_prime(1'000'000'009ull));
  EXPECT_FALSE(is_prime(1'000'000'007ull * 3));
  EXPECT_TRUE(is_prime((1ull << 61) - 1));  // Mersenne prime M61
}

TEST(NumTheory, PrimesInRange) {
  auto ps = primes_in(10, 30);
  EXPECT_EQ(ps, (std::vector<u64>{11, 13, 17, 19, 23, 29}));
  EXPECT_TRUE(primes_in(24, 28).empty());
}

TEST(NumTheory, PowAndInv) {
  EXPECT_EQ(powmod(2, 10, 1000), 24u);
  EXPECT_EQ(powmod(7, 0, 13), 1u);
  for (u64 a = 1; a < 13; ++a)
    EXPECT_EQ(mulmod(a, invmod(a, 13), 13), 1u) << a;
}

TEST(NumTheory, LegendreBasics) {
  // Squares mod 7: {1, 2, 4}.
  EXPECT_EQ(legendre(1, 7), 1);
  EXPECT_EQ(legendre(2, 7), 1);
  EXPECT_EQ(legendre(3, 7), -1);
  EXPECT_EQ(legendre(4, 7), 1);
  EXPECT_EQ(legendre(5, 7), -1);
  EXPECT_EQ(legendre(7, 7), 0);
  EXPECT_EQ(legendre(-1, 7), -1);   // 7 = 3 mod 4
  EXPECT_EQ(legendre(-1, 13), 1);   // 13 = 1 mod 4
}

// Paper anchors: the Legendre symbols deciding PSL vs PGL in Table I.
TEST(NumTheory, LegendrePaperInstances) {
  EXPECT_EQ(legendre(3, 5), -1);    // LPS(3,5) -> PGL
  EXPECT_EQ(legendre(11, 7), 1);    // LPS(11,7) -> PSL
  EXPECT_EQ(legendre(23, 11), 1);   // LPS(23,11) -> PSL
  EXPECT_EQ(legendre(53, 17), 1);   // LPS(53,17) -> PSL
  EXPECT_EQ(legendre(71, 17), -1);  // LPS(71,17) -> PGL
  EXPECT_EQ(legendre(89, 19), -1);  // LPS(89,19) -> PGL
  EXPECT_EQ(legendre(23, 13), 1);   // LPS(23,13) -> PSL (simulation config)
}

TEST(NumTheory, SqrtMod) {
  for (u64 p : {5ull, 7ull, 13ull, 17ull, 97ull, 101ull}) {
    for (u64 a = 0; a < p; ++a) {
      auto r = sqrt_mod(a, p);
      if (legendre(static_cast<i64>(a), p) >= 0) {
        ASSERT_TRUE(r.has_value()) << a << " mod " << p;
        EXPECT_EQ(mulmod(*r, *r, p), a);
      } else {
        EXPECT_FALSE(r.has_value());
      }
    }
  }
}

TEST(NumTheory, SolveX2Y2Plus1) {
  for (u64 q : {3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull, 101ull}) {
    auto [x, y] = solve_x2_y2_plus1(q);
    EXPECT_EQ((mulmod(x, x, q) + mulmod(y, y, q) + 1) % q, 0u) << q;
  }
}

// Jacobi's theorem pins the LPS generator count to exactly p+1.
TEST(NumTheory, FourSquaresCount) {
  for (u64 p : {3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull, 23ull, 29ull,
                53ull, 71ull, 89ull}) {
    auto sols = lps_four_squares(p);
    EXPECT_EQ(sols.size(), p + 1) << p;
    for (const auto& s : sols) {
      EXPECT_EQ(s.a0 * s.a0 + s.a1 * s.a1 + s.a2 * s.a2 + s.a3 * s.a3,
                static_cast<i64>(p));
      if (p % 4 == 1) {
        EXPECT_GT(s.a0, 0);
        EXPECT_EQ(s.a0 % 2, 1);
      } else {
        EXPECT_TRUE((s.a0 > 0 && s.a0 % 2 == 0) || (s.a0 == 0 && s.a1 > 0));
      }
    }
  }
}

// The LPS generator set is closed under inversion: negating (a1,a2,a3)
// maps solutions to solutions.
TEST(NumTheory, FourSquaresSymmetric) {
  for (u64 p : {5ull, 13ull, 29ull}) {  // p = 1 mod 4: a0 unchanged
    auto sols = lps_four_squares(p);
    std::set<std::tuple<i64, i64, i64, i64>> all;
    for (const auto& s : sols) all.insert({s.a0, s.a1, s.a2, s.a3});
    for (const auto& s : sols)
      EXPECT_TRUE(all.count({s.a0, -s.a1, -s.a2, -s.a3})) << p;
  }
}

TEST(NumTheory, PrimePower) {
  EXPECT_EQ(prime_power(9)->first, 3u);
  EXPECT_EQ(prime_power(9)->second, 2u);
  EXPECT_EQ(prime_power(27)->second, 3u);
  EXPECT_EQ(prime_power(4)->first, 2u);
  EXPECT_EQ(prime_power(13)->second, 1u);
  EXPECT_FALSE(prime_power(12).has_value());
  EXPECT_FALSE(prime_power(1).has_value());
}

}  // namespace
}  // namespace sfly::nt
