// Fig. 4 (upper-left, upper-right, lower-left) — the design-space plots:
// feasible (vertices, radix) points of LPS for p,q < 300, the normalized
// bisection bandwidth of LPS instances, and feasible sizes per radix for
// all four topology families.
//
// The upper-right sweep is campaign-backed: the LPS instances form a
// topology axis selected by a metadata filter (size and radix bounds,
// no graph is built to decide) with the reduced preset's instance cap.

#include "bench_common.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/parallel.hpp"

using namespace sfly;

int main(int argc, char** argv) {
  bench::StandardOptions opts(
      argc, argv,
      {"Fig. 4: LPS design space + normalized bisection bandwidth",
       "#   --max-n N    largest instance actually bisected (default 4000)\n"
       "#   --max-pq N   LPS parameter bound for the feasibility scan (default 300)\n"
       "#   --threads N  engine worker threads (default: all hardware threads)\n"
       "#   --csv        also dump the engine results as CSV",
       {{"--max-n", true, "largest instance actually bisected (default 4000)"},
        {"--max-pq", true,
         "LPS parameter bound for the feasibility scan (default 300)"}}});
  const std::uint64_t max_pq = opts.flags().get("--max-pq", 300);
  const std::uint64_t max_n =
      opts.full() ? 20000 : opts.flags().get("--max-n", 4000);

  // The bisections dominate this bench's wall clock, and every instance is
  // independent: one kStructure scenario per LPS instance, declared as a
  // filtered topology axis and fanned across the task pool.
  engine::Engine eng(opts.engine_config());
  engine::Campaign camp(eng, "fig4_design_space");
  {
    auto inst = topo::lps_instances(100, 100);
    std::sort(inst.begin(), inst.end(), [](const auto& a, const auto& b) {
      return a.num_vertices() < b.num_vertices();
    });
    std::vector<engine::TopologySpec> specs;
    for (const auto& params : inst)
      specs.push_back({params.name(),
                       [params] { return topo::lps_graph(params); },
                       /*concentration=*/8, params.num_vertices(),
                       params.radix()});
    engine::CampaignBuilder grid;
    grid.proto().kind = engine::Kind::kStructure;
    grid.proto().bisection_restarts = 3;
    grid.proto().seed = opts.seed_or(7);
    grid.topologies(
        std::move(specs),
        [max_n](const engine::TopologySpec& t) {
          return t.vertices <= max_n && t.radix >= 4;
        },
        /*limit=*/opts.full() ? 0 : 14);
    camp.analytic("bisection", std::move(grid));
  }
  if (opts.dry_run()) {
    camp.print_plan();
    return 0;
  }

  // --- upper-left: feasible LPS sizes, summarized per radix -------------
  {
    std::map<std::uint32_t, std::vector<std::uint64_t>> sizes_per_radix;
    for (const auto& pt : topo::feasible_lps(max_pq, max_pq))
      sizes_per_radix[pt.radix].push_back(pt.vertices);
    Table t({"Radix", "Feasible sizes (p,q<" + std::to_string(max_pq) + ")",
             "Min n", "Max n"});
    std::size_t shown = 0;
    for (auto& [radix, sizes] : sizes_per_radix) {
      std::sort(sizes.begin(), sizes.end());
      t.add_row({std::to_string(radix), std::to_string(sizes.size()),
                 std::to_string(sizes.front()), std::to_string(sizes.back())});
      if (++shown >= 24 && !opts.full()) break;
    }
    std::printf("== Fig. 4 upper-left: LPS feasible (radix, size) points ==\n");
    t.print();
    std::printf("# Shape check: no large gaps — every radix p+1 offers sizes\n"
                "# growing as q^3; arbitrarily large networks per fixed radix.\n\n");
  }

  // --- lower-left: feasible sizes per radix, per family -----------------
  {
    Table t({"Family", "Feasible instances", "Example smallest", "Example largest"});
    auto summarize = [&](const char* name, std::vector<topo::FeasiblePoint> pts) {
      if (pts.empty()) return;
      auto lo = std::min_element(pts.begin(), pts.end(), [](auto& a, auto& b) {
        return a.vertices < b.vertices;
      });
      auto hi = std::max_element(pts.begin(), pts.end(), [](auto& a, auto& b) {
        return a.vertices < b.vertices;
      });
      t.add_row({name, std::to_string(pts.size()),
                 lo->name + " n=" + std::to_string(lo->vertices),
                 hi->name + " n=" + std::to_string(hi->vertices)});
    };
    summarize("LPS", topo::feasible_lps(100, 100));
    summarize("SlimFly", topo::feasible_slimfly(100));
    summarize("BundleFly", topo::feasible_bundlefly(100, 12));
    summarize("DragonFly", topo::feasible_dragonfly(100));
    std::printf("== Fig. 4 lower-left: feasible sizes per radix ==\n");
    t.print();
    std::printf("# SlimFly/DragonFly: radix fixes the size; BundleFly: a few\n"
                "# sizes per radix; LPS: a whole q-indexed family per radix.\n\n");
  }

  // --- upper-right: normalized bisection bandwidth of LPS ---------------
  {
    if (opts.profile()) camp.materialize_artifacts();
    if (const auto st = bench::execute_campaign(camp, opts);
        st != bench::RunStatus::kDone)
      return bench::exit_code(st);
    auto& phase = camp.phase("bisection");
    const auto& chosen = phase.grid().topology_specs();
    const auto& results = phase.results();

    Table t({"Instance", "n", "Radix", "Norm. bisection BW", "Ramanujan floor"});
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& spec = chosen[i];
      double k = spec.radix;
      double floor = (k - 2.0 * std::sqrt(k - 1.0)) / (2.0 * k);
      t.add_row({spec.name, std::to_string(spec.vertices),
                 std::to_string(spec.radix),
                 results[i].ok ? Table::num(results[i].normalized_bisection, 3)
                               : "ERR",
                 Table::num(floor, 3)});
    }
    std::printf("== Fig. 4 upper-right: normalized bisection bandwidth ==\n");
    t.print();
    std::printf("# Shape check: values rise with radix (crossing 1/3 around\n"
                "# radix ~18) and do NOT decay with size at fixed radix.\n");
    std::printf("# engine: %zu scenarios in %.2fs on %u thread(s)\n",
                results.size(), phase.eval_seconds(),
                opts.threads() ? opts.threads()
                               : static_cast<unsigned>(hardware_threads()));
  }
  bench::print_profile(camp, opts);
  return 0;
}
