#pragma once
// Random link-failure experiments (Section IV-A) and dynamic failure
// schedules (DESIGN.md §7).
//
// The paper deletes a fixed proportion of edges uniformly at random,
// re-measures diameter / mean distance / bisection bandwidth on the
// survivors, and averages over enough trials that the coefficient of
// variation of batch means drops below 10% (their footnote 1).  This
// module provides the subgraph sampler and the adaptive trial driver.
//
// Beyond the paper's static pre-run sampling, ChurnSpec/FailureSchedule
// describe *mid-run* link and router churn: a deterministic, seed-derived
// timeline of down/up events that the simulator consumes as first-class
// events (sim/simulator.hpp), so "what happens to in-flight traffic when
// a link dies" is a reproducible campaign axis.

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.hpp"

namespace sfly {

/// Delete `round(fraction*m)` edges chosen uniformly at random.  Throws
/// std::invalid_argument unless `fraction` is a finite value in [0, 1].
[[nodiscard]] Graph delete_random_edges(const Graph& g, double fraction,
                                        std::uint64_t seed);

struct TrialResult {
  double mean = 0.0;
  std::uint64_t trials = 0;   // total trials actually run
  bool converged = false;     // CoV target reached before the cap
};

/// Paper-style adaptive averaging: run batches of `x` trials (10 batches),
/// multiply x by 10 until the coefficient of variation of the 10 batch
/// means is below `cov_target`, or `max_trials` is hit.  `metric` receives
/// a trial index to derive its RNG stream.  Trials whose metric is NaN
/// (e.g. graph disconnected) are skipped and do not count.
///
/// `mean` covers every counted trial across every wave — the same
/// population `trials` reports — not just the last wave's batches.  (The
/// CoV stopping rule itself is still judged on the current wave's 10
/// batch means, per the paper.)
[[nodiscard]] TrialResult adaptive_mean(
    const std::function<double(std::uint64_t trial)>& metric,
    std::uint64_t initial_batch = 1, double cov_target = 0.10,
    std::uint64_t max_trials = 10'000);

// ---------------------------------------------------------------------------
// Dynamic failure schedules.

enum class ChurnKind : std::uint8_t {
  kLinkDown,    // u, v = link endpoints (u < v)
  kLinkUp,
  kRouterDown,  // u = router; all incident links sever together
  kRouterUp,
};

[[nodiscard]] const char* churn_kind_name(ChurnKind k);

/// One timed topology-state change.
struct ChurnEvent {
  double time_ns = 0.0;
  ChurnKind kind = ChurnKind::kLinkDown;
  Vertex u = 0, v = 0;
};

/// A chronological down/up timeline, ready for Simulator::inject_failures.
using FailureSchedule = std::vector<ChurnEvent>;

/// The flat, hashable churn knobs of a scenario — a campaign axis value.
/// All-zero kills means "static run" everywhere the spec travels.
struct ChurnSpec {
  std::uint32_t link_kills = 0;    // distinct links taken down
  std::uint32_t router_kills = 0;  // distinct routers taken down
  double start_ns = 0.0;           // earliest possible down time
  double window_ns = 0.0;          // down times uniform in [start, start+window]
  double repair_ns = 0.0;          // fixed down->up delay; 0 = no recovery

  [[nodiscard]] bool any() const { return link_kills > 0 || router_kills > 0; }
};

/// Compact axis label: "none", "2L", "1R", "2L+1R" (+ "~" when repairing).
[[nodiscard]] std::string churn_label(const ChurnSpec& spec);

/// Expand a ChurnSpec into the concrete event timeline for `g`: sample
/// `link_kills` distinct links and `router_kills` distinct routers
/// uniformly at random, give each a down time uniform in the spec window,
/// and (when repair_ns > 0) a matching up event repair_ns later.  Events
/// sort by (time, kind, u, v), so the timeline — like everything else
/// seeded — is bitwise deterministic for a given (graph, spec, seed).
/// Kill counts clamp to the graph's link/router population.  Throws
/// std::invalid_argument on negative or non-finite times.
[[nodiscard]] FailureSchedule make_failure_schedule(const Graph& g,
                                                    const ChurnSpec& spec,
                                                    std::uint64_t seed);

}  // namespace sfly
