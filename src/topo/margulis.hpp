#pragma once
// The Margulis / Gabber–Galil expander family (Section III mentions
// Margulis' construction as the other original explicit expander family
// alongside LPS).  Vertices are Z_n x Z_n; each vertex connects through
// eight affine maps; the result is a simple graph of degree <= 8 with
// second eigenvalue bounded by 5*sqrt(2) ~ 7.07 < 8 (a strong, though not
// Ramanujan, expander).

#include <cstdint>
#include <string>

#include "graph/graph.hpp"

namespace sfly::topo {

struct MargulisParams {
  std::uint32_t n = 0;  // side of the Z_n x Z_n torus of vertices

  [[nodiscard]] bool valid() const { return n >= 2; }
  [[nodiscard]] std::uint64_t num_vertices() const {
    return static_cast<std::uint64_t>(n) * n;
  }
  [[nodiscard]] std::string name() const {
    return "Margulis(" + std::to_string(n) + ")";
  }
};

[[nodiscard]] Graph margulis_graph(const MargulisParams& params);

}  // namespace sfly::topo
