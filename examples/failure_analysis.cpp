// Failure analysis: how gracefully does a SpectralFly network degrade as
// random links die?  Reproduces the Section IV-A methodology on a single
// topology with a progress table (diameter, mean distance, bisection,
// connectivity threshold).
//
//   $ ./examples/failure_analysis [p] [q]

#include <cstdio>
#include <cstdlib>

#include "graph/failures.hpp"
#include "graph/metrics.hpp"
#include "partition/bisection.hpp"
#include "topo/lps.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace sfly;
  topo::LpsParams params;
  params.p = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 23;
  params.q = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 11;
  auto g = topo::lps_graph(params);
  std::printf("%s: %u routers, %zu links\n\n", params.name().c_str(),
              g.num_vertices(), g.num_edges());

  Table t({"Links failed", "Connected trials", "Diameter", "Mean dist",
           "Bisection"});
  const int kTrials = 8;
  for (double f : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6}) {
    int connected = 0;
    double diam = 0, dist = 0, cut = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      Graph h = delete_random_edges(g, f, split_seed(5150, trial));
      auto stats = distance_stats(h);
      if (!stats.connected) continue;
      ++connected;
      diam += stats.diameter;
      dist += stats.mean_distance;
      cut += static_cast<double>(bisection_bandwidth(h, {.restarts = 2}));
    }
    if (connected == 0) {
      t.add_row({Table::num(100 * f, 0) + "%", "0/8", "-", "-", "-"});
      continue;
    }
    t.add_row({Table::num(100 * f, 0) + "%",
               std::to_string(connected) + "/" + std::to_string(kTrials),
               Table::num(diam / connected, 2), Table::num(dist / connected, 2),
               Table::num(cut / connected, 0)});
  }
  t.print();
  std::printf("\nRamanujan expansion keeps the surviving network compact: the\n"
              "diameter creeps (not jumps) and bisection degrades linearly.\n");
  return 0;
}
