#pragma once
/// \file journal.hpp
/// Campaign journals: reading a `--json` JSONL stream back as the
/// checkpoint of a partially-run campaign (see DESIGN.md §6 and
/// docs/CAMPAIGNS.md).
///
/// The JsonlSink stream is deterministic — batch-ordered rows whose bytes
/// are invariant under the thread count — which makes the stream itself a
/// resume journal: a killed campaign restarted with `--resume PATH` skips
/// every scenario whose row is already on disk and appends only the
/// remainder, so the final file is byte-identical to an uninterrupted
/// run.  To make the stream self-describing, Campaign/AdaptiveSweep
/// prefix every batch with one meta line
///
///     {"batch":"<phase>","campaign":"<name>","scenarios":N}
///
/// (plus `"shard":[I,K],"rows":M` when the batch was shard-partitioned);
/// result rows keep the exact JsonlSink format.  CampaignJournal parses
/// such a file back into batch segments of fully-typed Result/SimResult
/// rows, validating every line by re-serializing it (the `%.17g` number
/// format round-trips doubles exactly, so a parsed row is bitwise equal
/// to the evaluated one).  A trailing half-written line — the signature
/// of a hard kill — is detected and dropped; `valid_bytes()` tells the
/// resume writer where to truncate before appending.

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "engine/scenario.hpp"
#include "engine/sink.hpp"

namespace sfly::engine {

/// The contiguous index range `[first, second)` of batch rows owned by
/// shard `index` out of `count`: ranges partition `[0, n)`, are stable
/// under `n`, and concatenate in shard order — which is what lets shard
/// journals merge back to the unsharded byte stream.
[[nodiscard]] std::pair<std::size_t, std::size_t> shard_range(
    std::size_t n, std::size_t index, std::size_t count);

/// A parsed `--json` stream: batch segments of typed result rows.
class CampaignJournal {
 public:
  /// One parsed result row.  Exactly one of the two payloads is live
  /// (`sim` discriminates); `raw` keeps the original line for stable
  /// merging.
  struct Row {
    bool sim = false;
    Result result;          ///< live when !sim
    SimResult sim_result;   ///< live when sim
    std::string raw;        ///< the original JSONL line (no newline)
  };

  /// One batch: its meta header plus the rows present in the file.  Only
  /// the final segment of a journal may hold fewer rows than its meta
  /// declares — that is the kill point a resume continues from.
  struct Segment {
    BatchMeta meta;
    std::vector<Row> rows;
  };

  /// Parse `path`.  A missing file yields an empty journal (a fresh
  /// `--resume` run starts from nothing); a file whose rows precede any
  /// batch header, or with a corrupt line before the final one, throws
  /// std::runtime_error.  A half-written final line is dropped and
  /// excluded from valid_bytes().
  [[nodiscard]] static CampaignJournal load(const std::string& path);

  [[nodiscard]] const std::vector<Segment>& segments() const {
    return segments_;
  }
  /// Total result rows across all segments.
  [[nodiscard]] std::size_t rows() const;
  [[nodiscard]] bool empty() const { return segments_.empty(); }
  /// Byte offset just past the last complete, parseable line — the
  /// truncation point before a resume run appends.
  [[nodiscard]] std::size_t valid_bytes() const { return valid_bytes_; }

  // --- line parsers (also the round-trip test surface) -----------------
  /// Parse one analytic-result line.  Returns nullopt unless
  /// re-serializing the parsed row reproduces `line` byte for byte.
  [[nodiscard]] static std::optional<Result> parse_result(
      const std::string& line);
  /// Parse one simulation-result line (same round-trip guarantee).
  [[nodiscard]] static std::optional<SimResult> parse_sim_result(
      const std::string& line);
  /// Parse one batch meta header line.
  [[nodiscard]] static std::optional<BatchMeta> parse_meta(
      const std::string& line);

  /// Stable shard merge: re-emit the batches of `inputs` (one complete
  /// journal per shard, any argument order) as the unsharded byte
  /// stream — per batch, the unsharded meta line followed by every
  /// shard's rows concatenated in shard order.  Throws
  /// std::runtime_error on incomplete or inconsistent shard sets.
  static void merge(const std::vector<std::string>& inputs, std::FILE* out);

 private:
  std::vector<Segment> segments_;
  std::size_t valid_bytes_ = 0;
};

}  // namespace sfly::engine
