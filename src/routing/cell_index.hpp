#pragma once
// Hierarchical cell-based routing index — the sub-quadratic replacement
// for the all-pairs Tables/NextHopIndex pair past a few thousand routers
// (ROADMAP "100k-router scale"; OSRM's partition/customize split is the
// blueprint).
//
// The topology is cut into leaf cells by recursive bisection
// (partition/recursive_bisection.hpp).  Per cell we store the
// cell-restricted distance matrix between its members (paths confined to
// the cell's induced subgraph; 0xFF where none exists — on expanders,
// cells are near-edgeless and that is the common case).  Every member
// with an out-of-cell edge is a *boundary* vertex; the boundary vertices
// form an overlay graph whose edges are (a) same-cell pairs weighted by
// their finite cell-restricted distance and (b) the original cut edges,
// weight 1.
//
// Exactness, not approximation: any shortest path decomposes into maximal
// single-cell segments joined by cut edges, each segment's endpoints are
// boundary vertices of its cell, and the cell-restricted distance lower-
// bounds nothing — it is *achieved* by that segment — so overlay
// distances between boundary vertices equal true graph distances, and
//
//     d(u,v) = min( intra(u,v) if same cell,
//                   min over boundary b of cell(u):  intra(u,b) + d(b,v) )
//
// is exact for every pair.  A CellQuery materializes d(., dst) on the
// overlay once per destination (bucket-queue Dijkstra over <= 255-hop
// labels) and answers distance / minimal-next-hop / sampled-next-hop
// queries per vertex in O(cell size).  Minimal next-hop sets are computed
// with the same neighbor scan and the same (entropy % count) pick as
// Tables::sample_next_hop, so at any scale where both exist the sampled
// hops agree bit for bit (tests/test_cell_index.cpp pins this).
//
// Memory is O(V * cell + cut) instead of O(V^2): ~40 MB where the exact
// tables would need ~2.7 GB of distances alone at 52k routers.
//
// Below `exact_threshold` vertices a CellIndex simply wraps the shared
// all-pairs Tables (wrap_exact) and delegates — small topologies keep the
// exact artifact and its pinned bytes, large ones switch representation
// behind the same engine::Artifacts accessor.

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "routing/tables.hpp"
#include "util/owned_span.hpp"

namespace sfly::routing {

class CellIndex;

/// Per-destination query workspace over one CellIndex.  Not thread-safe;
/// make one per thread and prepare() it per destination.  All vertex
/// arguments must belong to the graph the index was built over (passed
/// once at make_query time).
class CellQuery {
 public:
  /// Materialize exact distances-to-`dst` on the boundary overlay.
  /// Must be called before the per-vertex queries; O(overlay) in cell
  /// mode, O(1) when the index wraps exact tables.
  void prepare(Vertex dst);

  /// Destination of the last prepare() (num_vertices() when unprepared).
  [[nodiscard]] Vertex dst() const { return dst_; }

  /// Exact d(u, dst).  Throws on distance overflow (> 254 hops).
  [[nodiscard]] std::uint8_t distance(Vertex u) const;

  /// Append all minimal next hops from u toward dst (adjacency order) —
  /// the same set Tables::minimal_next_hops yields.
  void minimal_next_hops(Vertex u, std::vector<Vertex>& out) const;

  /// The (entropy % count)-th minimal next hop — bitwise the hop
  /// Tables::sample_next_hop picks.  Requires u != dst.
  [[nodiscard]] Vertex sample_next_hop(Vertex u, std::uint64_t entropy) const;

 private:
  friend class CellIndex;
  CellQuery(const CellIndex* index, const Graph* graph);

  const CellIndex* index_;
  const Graph* graph_;
  Vertex dst_;
  std::vector<std::uint8_t> label_;                 // overlay node -> d(., dst)
  std::vector<std::vector<std::uint32_t>> buckets_; // Dijkstra bucket queue
};

class CellIndex {
 public:
  struct Options {
    Vertex max_cell_size = 64;  // leaf cell bound (2..255)
    std::uint64_t seed = 1;     // partition seed
    int restarts = 2;           // per-split bisection restarts
    int fm_passes = 4;          // per-split FM passes
  };

  /// The raw array set (snapshot serialization and from_view): every span
  /// is a zero-copy window into the index (or, for from_view, into
  /// externally owned memory such as an mmap'd snapshot).
  struct Views {
    Vertex n = 0;
    std::uint32_t num_cells = 0;
    std::uint32_t num_boundary = 0;
    std::uint8_t diameter_bound = 0;
    std::span<const std::uint32_t> cell_of;          // n
    std::span<const std::uint32_t> cell_offsets;     // num_cells + 1
    std::span<const std::uint32_t> members;          // n, ascending per cell
    std::span<const std::uint16_t> local_index;      // n
    std::span<const std::uint32_t> intra_offsets;    // num_cells + 1
    std::span<const std::uint8_t> intra;             // sum of cell_size^2
    std::span<const std::uint32_t> boundary_offsets; // num_cells + 1
    std::span<const std::uint16_t> boundary_local;   // num_boundary
    std::span<const std::uint32_t> overlay_id;       // n (0xFFFFFFFF interior)
    std::span<const std::uint32_t> overlay_vertex;   // num_boundary
    std::span<const std::uint32_t> ov_offsets;       // num_boundary + 1
    std::span<const std::uint32_t> ov_adj;           // overlay edge targets
    std::span<const std::uint8_t> ov_w;              // parallel edge weights
  };

  /// Partition + per-cell matrices + boundary overlay.  Throws if the
  /// graph is disconnected (like Tables::build) or the options are out of
  /// range.  OpenMP-parallel over cells.
  static CellIndex build(const Graph& g, const Options& opts);
  static CellIndex build(const Graph& g) { return build(g, Options{}); }

  /// Exact mode: share an already-built all-pairs table and delegate every
  /// query to it bitwise.  No arrays are built (memory_bytes() is 0).
  static CellIndex wrap_exact(std::shared_ptr<const Tables> tables);

  /// Zero-copy view over externally owned arrays (mmap'd snapshot).  The
  /// backing memory must outlive the index and every copy of it.
  static CellIndex from_view(const Views& v);

  /// Process-wide count of build() calls — warm-restart assertions check
  /// that snapshot-served queries never trigger a cell rebuild.
  static std::uint64_t builds();

  /// True when this index delegates to exact all-pairs tables.
  [[nodiscard]] bool exact() const { return tables_ != nullptr; }
  /// The wrapped tables in exact mode (nullptr in cell mode).
  [[nodiscard]] const std::shared_ptr<const Tables>& exact_tables() const {
    return tables_;
  }

  [[nodiscard]] Vertex num_vertices() const { return n_; }
  [[nodiscard]] std::uint32_t num_cells() const { return num_cells_; }
  [[nodiscard]] std::uint32_t num_boundary() const { return num_boundary_; }
  /// Upper bound on the graph diameter (2 * ecc(vertex 0), capped at 254);
  /// exact-mode indexes report the wrapped tables' true diameter.
  [[nodiscard]] std::uint8_t diameter_bound() const {
    return tables_ ? tables_->diameter() : diameter_bound_;
  }

  /// A query workspace bound to `g` — which must be the graph this index
  /// was built over (same vertex set and adjacency).
  [[nodiscard]] CellQuery make_query(const Graph& g) const {
    return CellQuery(this, &g);
  }

  /// Bytes of owned/viewed cell arrays (0 in exact mode — the wrapped
  /// tables are accounted by their own owner).
  [[nodiscard]] std::size_t memory_bytes() const;
  [[nodiscard]] bool is_view() const { return cell_of_.is_view(); }

  /// Raw arrays (snapshot serialization; read-only).
  [[nodiscard]] Views views() const;

 private:
  friend class CellQuery;
  CellIndex() = default;

  static constexpr std::uint32_t kNoOverlay = 0xFFFFFFFFu;

  Vertex n_ = 0;
  std::uint32_t num_cells_ = 0;
  std::uint32_t num_boundary_ = 0;
  std::uint8_t diameter_bound_ = 0;
  OwnedSpan<std::uint32_t> cell_of_;
  OwnedSpan<std::uint32_t> cell_offsets_;
  OwnedSpan<std::uint32_t> members_;
  OwnedSpan<std::uint16_t> local_index_;
  OwnedSpan<std::uint32_t> intra_offsets_;
  OwnedSpan<std::uint8_t> intra_;
  OwnedSpan<std::uint32_t> boundary_offsets_;
  OwnedSpan<std::uint16_t> boundary_local_;
  OwnedSpan<std::uint32_t> overlay_id_;
  OwnedSpan<std::uint32_t> overlay_vertex_;
  OwnedSpan<std::uint32_t> ov_offsets_;
  OwnedSpan<std::uint32_t> ov_adj_;
  OwnedSpan<std::uint8_t> ov_w_;
  std::shared_ptr<const Tables> tables_;  // exact mode only
};

}  // namespace sfly::routing
