// Fig. 5 — structural properties under random link failures: diameter,
// mean hop count, and bisection bandwidth vs the fraction of deleted
// edges, for comparable ~600-router (and, with --full, ~5-7K-router)
// instances of the four families.
//
// Engine-backed: every (topology, fraction, trial) point is an independent
// kStructure scenario fanned across the task pool, so all trials of all
// sweep points run concurrently.  The paper's batch/CoV stopping rule
// (footnote 1) is applied post-hoc over each point's precomputed trial
// sequence: we keep the shortest prefix of 10-trial batches whose batch
// means have CoV < 10%, or all --trials when none converges.  (The seed
// version evaluated trials one at a time and stopped early; the engine
// version buys wall-clock with a few speculative trials instead.)

#include "bench_common.hpp"

#include <algorithm>
#include <cmath>

#include "engine/engine.hpp"
#include "util/rng.hpp"

using namespace sfly;

namespace {

struct Subject {
  std::string name;
  std::function<Graph()> build;
};

// Prefix length selected by the CoV rule over per-trial metric values
// (NaN-free): batches of size ceil(len/10); converged when the CoV of the
// 10 batch means drops below `cov_target`.
std::size_t cov_prefix(const std::vector<double>& vals, double cov_target) {
  for (std::size_t x = 1; 10 * x <= vals.size(); x *= 10) {
    const std::size_t use = 10 * x;
    double means[10];
    for (std::size_t b = 0; b < 10; ++b) {
      double s = 0;
      for (std::size_t i = 0; i < x; ++i) s += vals[b * x + i];
      means[b] = s / static_cast<double>(x);
    }
    double m = 0;
    for (double v : means) m += v;
    m /= 10.0;
    double var = 0;
    for (double v : means) var += (v - m) * (v - m);
    double cov = m != 0.0 ? std::sqrt(var / 10.0) / std::fabs(m) : 0.0;
    if (cov < cov_target) return use;
  }
  return vals.size();
}

void sweep(engine::Engine& eng, const std::vector<Subject>& subjects,
           const std::vector<double>& fractions, std::uint64_t max_trials) {
  for (const auto& s : subjects) eng.register_topology(s.name, s.build);

  // One scenario per (subject, fraction, trial).  Trial seeds are derived
  // from the same (9177, trial) base as the pre-engine bench, but the
  // engine re-splits per component (failure sampling, bisection), so
  // per-trial numbers differ from the old output; only the statistics are
  // comparable.
  std::vector<engine::Scenario> batch;
  for (const auto& s : subjects)
    for (double f : fractions)
      for (std::uint64_t trial = 0; trial < max_trials; ++trial) {
        engine::Scenario sc;
        sc.topology = s.name;
        sc.kind = engine::Kind::kStructure;
        sc.failure_fraction = f;
        sc.bisection_restarts = 2;
        sc.seed = split_seed(9177, trial);
        batch.push_back(std::move(sc));
        if (f == 0.0) break;  // pristine graphs are deterministic
      }
  auto results = eng.run(batch);

  Table t({"Topology", "Fail frac", "Diameter", "Mean hops", "Bisection BW",
           "Trials"});
  std::size_t at = 0;
  for (const auto& s : subjects) {
    for (double f : fractions) {
      const std::size_t trials = f == 0.0 ? 1 : max_trials;
      double diameter_sum = 0, hops_sum = 0, cut_sum = 0;
      std::vector<double> hop_vals;  // convergence tracked on mean distance
      std::vector<const engine::Result*> kept;
      for (std::size_t i = 0; i < trials; ++i) {
        const auto& r = results[at + i];
        if (r.ok && r.connected) {
          kept.push_back(&r);
          hop_vals.push_back(r.mean_hops);
        }
      }
      const std::size_t use =
          hop_vals.empty() ? 0 : cov_prefix(hop_vals, 0.10);
      for (std::size_t i = 0; i < use; ++i) {
        diameter_sum += kept[i]->diameter;
        hops_sum += kept[i]->mean_hops;
        cut_sum += kept[i]->bisection;
      }
      at += trials;
      if (use == 0) {
        t.add_row({s.name, Table::num(f, 2), "disconnected", "-", "-",
                   std::to_string(trials)});
        continue;
      }
      t.add_row({s.name, Table::num(f, 2),
                 Table::num(diameter_sum / static_cast<double>(use), 2),
                 Table::num(hops_sum / static_cast<double>(use), 2),
                 Table::num(cut_sum / static_cast<double>(use), 0),
                 std::to_string(use)});
    }
    t.add_row({"---"});
  }
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  bench::Flags::usage(
      "Fig. 5: diameter / mean hops / bisection under random edge failures",
      "#   --trials N   trials per point (default 10)\n"
      "#   --threads N  engine worker threads (default: all hardware threads)\n"
      "#   --full       also run the ~5-7K-router class with more trials");
  const std::uint64_t max_trials =
      std::max<std::uint64_t>(1, flags.get("--trials", flags.full() ? 100 : 10));

  engine::EngineConfig cfg;
  cfg.threads = flags.threads();
  engine::Engine eng(cfg);

  std::printf("== ~600-router class ==\n");
  std::vector<Subject> small;
  small.push_back({"LPS(23,11)", [] { return topo::lps_graph({23, 11}); }});
  small.push_back({"SlimFly(17)", [] { return topo::slimfly_graph({17}); }});
  small.push_back({"BundleFly(37,3)", [] {
                     return topo::bundlefly_graph(
                         {37, 3, topo::BundleShift::kAffine});
                   }});
  small.push_back({"DragonFly(24)", [] {
                     return topo::dragonfly_graph(
                         topo::DragonFlyParams::canonical(24));
                   }});
  sweep(eng, small, {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}, max_trials);
  std::printf(
      "\n# Paper shape: SlimFly's diameter-2 is fragile (jumps to 4 at 10%%\n"
      "# failures, briefly worse than LPS); SlimFly keeps the lowest mean\n"
      "# hops, LPS keeps the highest bisection; BF/DF degrade faster.\n");

  if (flags.full()) {
    std::printf("\n== ~5-7K-router class ==\n");
    std::vector<Subject> large;
    large.push_back({"LPS(71,17)", [] { return topo::lps_graph({71, 17}); }});
    large.push_back({"SlimFly(47)", [] { return topo::slimfly_graph({47}); }});
    large.push_back({"BundleFly(137,4)", [] {
                       return topo::bundlefly_graph(
                           {137, 4, topo::BundleShift::kAffine});
                     }});
    large.push_back({"DragonFly(69)", [] {
                       return topo::dragonfly_graph(
                           topo::DragonFlyParams::canonical(69));
                     }});
    sweep(eng, large, {0.0, 0.2, 0.4, 0.6, 0.8}, max_trials);
  }
  return 0;
}
