#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>

namespace sfly::sim {

void LatencyStats::record(double latency_ns) {
  if (count_ == 0 || latency_ns < min_) min_ = latency_ns;
  if (latency_ns > max_) max_ = latency_ns;
  sum_ += latency_ns;
  ++count_;
  samples_.push_back(latency_ns);
  sorted_ = false;
}

double LatencyStats::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  double idx = p * static_cast<double>(samples_.size() - 1);
  std::size_t lo = static_cast<std::size_t>(std::floor(idx));
  std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

}  // namespace sfly::sim
