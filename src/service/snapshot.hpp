#pragma once
// Versioned artifact snapshot store (docs/SERVICE.md §Snapshots).
//
// A snapshot serializes every fully materialized topology in an
// ArtifactCache — graph CSR, all-pairs distance matrix, minimal next-hop
// index, spectra — into one relocatable, fingerprinted binary file:
//
//     [Header 64B] [EntryDesc x entry_count] [8-byte-aligned blobs ...]
//
// All blob positions are absolute file offsets, so the file maps at any
// address (relocatable).  The FNV-1a fingerprint covers every byte after
// the header; open() re-hashes and rejects corruption, and a format
// version bump rejects stale files instead of misreading them.  Byte
// order and struct layout are native: a snapshot is a warm-restart /
// multi-process vehicle on one machine (OSRM's shared-memory store is
// the blueprint), not an interchange format.
//
// Snapshot::load_into installs each entry as pre-materialized Artifacts
// whose component deleters hold the Snapshot shared_ptr, so the mapping
// lives exactly as long as the last view over it.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/artifact_cache.hpp"

namespace sfly::service {

/// Snapshot file format version; bumped on any layout change.
/// v2: per-entry artifact flags + hierarchical cell-index blobs, so
/// 50k+-router topologies snapshot their CellIndex instead of the
/// impractical O(V^2) tables.
inline constexpr std::uint32_t kSnapshotVersion = 2;

/// 64-bit FNV-1a over `n` bytes (the snapshot fingerprint hash).
[[nodiscard]] std::uint64_t fnv1a64(const void* data, std::size_t n);

/// Serialize every topology in `cache` to `path` (written to a temp file
/// and renamed, so readers never see a torn snapshot).  Forces graph,
/// spectra, and the scale-appropriate routing artifact per entry: exact
/// tables + next-hop index at or below engine::kCellExactThreshold
/// vertices, the hierarchical cell index above it.  Throws
/// std::runtime_error on I/O failure or an unserializable entry (e.g. a
/// topology name too long for the fixed-width descriptor).
void write_snapshot(const std::string& path, engine::ArtifactCache& cache);

/// A validated, read-only mmap of a snapshot file.
class Snapshot {
 public:
  /// Map and validate `path`: magic, format version, size bounds,
  /// fingerprint, and per-entry offset bounds.  Throws std::runtime_error
  /// with a reason on any mismatch (version skew names both versions).
  [[nodiscard]] static std::shared_ptr<Snapshot> open(const std::string& path);

  ~Snapshot();
  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

  [[nodiscard]] std::uint64_t fingerprint() const { return fingerprint_; }
  [[nodiscard]] std::size_t size_bytes() const { return size_; }
  [[nodiscard]] std::vector<std::string> names() const;

  /// True when `p` points into the mapped region — lets tests assert that
  /// loaded artifacts really are zero-copy views over the file.
  [[nodiscard]] bool contains(const void* p) const {
    const char* c = static_cast<const char*>(p);
    return c >= base_ && c < base_ + size_;
  }

  /// Install every entry into `cache` as pre-materialized Artifacts.
  /// Every component shared_ptr keeps `self` alive via its deleter, so
  /// dropping the cache (or the Snapshot handle) never dangles a view.
  static void load_into(const std::shared_ptr<Snapshot>& self,
                        engine::ArtifactCache& cache);

 private:
  Snapshot() = default;

  const char* base_ = nullptr;
  std::size_t size_ = 0;
  std::uint64_t fingerprint_ = 0;
  std::uint32_t entry_count_ = 0;
};

}  // namespace sfly::service
