#include "service/query.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <stdexcept>

#include "engine/sink.hpp"
#include "graph/failures.hpp"
#include "routing/cell_index.hpp"
#include "routing/next_hop_index.hpp"
#include "routing/policy.hpp"
#include "sim/motifs.hpp"
#include "topo/factory.hpp"
#include "util/net.hpp"
#include "util/rng.hpp"

namespace sfly::service {

namespace {

// Shortest-exact double: %.17g round-trips every value; responses must be
// byte-stable across runs and thread counts, not pretty.
std::string fmt17(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string jstr(const std::string& s) { return "\"" + net::json_escape(s) + "\""; }

routing::Algo parse_algo(const std::string& name) {
  using routing::Algo;
  for (Algo a : {Algo::kMinimal, Algo::kValiant, Algo::kUgalL, Algo::kUgalG,
                 Algo::kAdaptiveMin})
    if (name == routing::algo_name(a)) return a;
  throw std::invalid_argument("unknown algo: " + name);
}

sim::Pattern parse_pattern(const std::string& name) {
  using sim::Pattern;
  for (Pattern p : {Pattern::kRandom, Pattern::kShuffle, Pattern::kBitReverse,
                    Pattern::kTranspose, Pattern::kNeighbor, Pattern::kHotspot})
    if (name == sim::pattern_name(p)) return p;
  throw std::invalid_argument("unknown pattern: " + name);
}

sim::PlacementPolicy parse_placement(const std::string& name) {
  if (name == "random") return sim::PlacementPolicy::kRandom;
  if (name == "linear") return sim::PlacementPolicy::kLinear;
  throw std::invalid_argument("unknown placement: " + name);
}

// "Halo3D26(8,8,8,3)" / "Sweep3D(16,32,8)" / "FFT(22,22)" -> motif factory.
// Mirrors bench/ember_common.hpp's instances; byte counts use the motif
// defaults so service and bench runs agree.
std::function<std::unique_ptr<sim::Motif>()> parse_motif(const std::string& spec) {
  const auto open = spec.find('(');
  const auto close = spec.rfind(')');
  if (open == std::string::npos || close != spec.size() - 1 || close < open)
    throw std::invalid_argument("motif spec must look like Name(a,b,...): " + spec);
  std::string family = spec.substr(0, open);
  std::transform(family.begin(), family.end(), family.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  std::vector<std::uint32_t> a;
  std::string tok;
  for (std::size_t i = open + 1; i <= close; ++i) {
    const char c = spec[i];
    if (c == ',' || c == ')') {
      if (tok.empty()) throw std::invalid_argument("bad motif args: " + spec);
      a.push_back(static_cast<std::uint32_t>(std::stoul(tok)));
      tok.clear();
    } else if (c != ' ') {
      tok += c;
    }
  }
  if (family == "halo3d26" && a.size() == 4)
    return [a] { return std::make_unique<sim::Halo3D26>(a[0], a[1], a[2], a[3]); };
  if (family == "sweep3d" && a.size() == 3)
    return [a] { return std::make_unique<sim::Sweep3D>(a[0], a[1], a[2]); };
  if (family == "fft" && a.size() == 2)
    return [a] { return std::make_unique<sim::FftAllToAll>(a[0], a[1]); };
  throw std::invalid_argument("unknown motif (or wrong arity): " + spec);
}

}  // namespace

std::string error_response(std::uint64_t id, const std::string& message) {
  return "{\"id\":" + std::to_string(id) + ",\"ok\":false,\"error\":" +
         jstr(message) + "}";
}

QueryEngine::QueryEngine(engine::EngineConfig cfg) : engine_(cfg) {
  handlers_["route"] = [this](const JsonObject& q, std::uint64_t id) {
    return handle_route(q, id);
  };
  handlers_["sim"] = [this](const JsonObject& q, std::uint64_t id) {
    return handle_sim(q, id);
  };
  handlers_["rank"] = [this](const JsonObject& q, std::uint64_t id) {
    return handle_rank(q, id);
  };
  handlers_["stats"] = [this](const JsonObject& q, std::uint64_t id) {
    return handle_stats(q, id);
  };
}

std::string QueryEngine::register_spec(const std::string& spec) {
  // Fast path: the spec is already a registered (canonical or adopted)
  // name — snapshot-loaded entries answer without any parsing.
  if (engine_.artifacts().contains(spec)) return spec;
  auto parsed = topo::parse_topology(spec);
  if (!engine_.artifacts().contains(parsed.name))
    engine_.register_topology(parsed.name, std::move(parsed.build));
  return parsed.name;
}

std::string QueryEngine::handle(const std::string& request) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t id = 0;
  try {
    JsonObject q;
    if (!JsonObject::scan(request, q))
      throw std::invalid_argument("malformed request (not a flat JSON object)");
    (void)q.get_u64("id", id);
    std::string kind;
    if (!q.get_str("kind", kind))
      throw std::invalid_argument("request is missing \"kind\"");
    const auto it = handlers_.find(kind);
    if (it == handlers_.end())
      throw std::invalid_argument("unknown query kind: " + kind);
    return it->second(q, id);
  } catch (const std::exception& e) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return error_response(id, e.what());
  } catch (...) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return error_response(id, "unknown error");
  }
}

std::string QueryEngine::handle_route(const JsonObject& q, std::uint64_t id) {
  std::string topo;
  if (!q.get_str("topo", topo))
    throw std::invalid_argument("route needs \"topo\"");
  std::uint64_t src = 0, dst = 0;
  if (!q.get_u64("src", src) || !q.get_u64("dst", dst))
    throw std::invalid_argument("route needs numeric \"src\" and \"dst\"");
  std::string algo_str = "minimal";
  (void)q.get_str("algo", algo_str);
  const routing::Algo algo = parse_algo(algo_str);
  std::uint64_t seed = 1;
  (void)q.get_u64("seed", seed);

  const std::string name = register_spec(topo);
  auto art = engine_.artifacts().get(name);
  std::shared_ptr<const Graph> g = art->graph();

  // Scale split: exact all-pairs tables up to engine::kCellExactThreshold
  // vertices (every pinned byte of the small-topology responses is served
  // by the unchanged path below), hierarchical cell index beyond it.
  const bool cell_mode = g->num_vertices() > engine::kCellExactThreshold;
  std::shared_ptr<const routing::Tables> t;
  std::shared_ptr<const routing::CellIndex> cell;
  if (cell_mode)
    cell = art->cell_index();
  else
    t = art->tables();

  // Failed-link overlay: "fail":[u1,v1,u2,v2,...].  The overlay tables are
  // query-local (never cached) — this is the "what if these links die"
  // probe, so a freshly built all-pairs table is the point.
  std::vector<std::uint64_t> fail;
  if (q.has("fail")) {
    if (!q.get_u64_array("fail", fail) || fail.size() % 2 != 0)
      throw std::invalid_argument(
          "\"fail\" must be a flat [u1,v1,u2,v2,...] link array");
    if (!fail.empty()) {
      auto edges = g->edge_list();
      for (std::size_t i = 0; i < fail.size(); i += 2) {
        Vertex u = static_cast<Vertex>(fail[i]);
        Vertex v = static_cast<Vertex>(fail[i + 1]);
        if (u > v) std::swap(u, v);
        const auto it = std::find(edges.begin(), edges.end(), std::make_pair(u, v));
        if (it == edges.end())
          throw std::invalid_argument("failed link is not an edge: " +
                                      std::to_string(u) + "-" + std::to_string(v));
        edges.erase(it);
      }
      auto overlay = std::make_shared<const Graph>(
          Graph::from_edges(g->num_vertices(), std::move(edges)));
      // Throws "graph disconnected" -> error frame when the overlay cuts
      // the destination off; the daemon stays up.
      if (cell_mode) {
        cell = std::make_shared<const routing::CellIndex>(
            routing::CellIndex::build(*overlay));
      } else {
        t = std::make_shared<const routing::Tables>(
            routing::Tables::build(*overlay));
      }
      g = std::move(overlay);
    }
  }

  const Vertex n = g->num_vertices();
  if (src >= n || dst >= n)
    throw std::invalid_argument("src/dst out of range (n=" + std::to_string(n) + ")");

  routing::PacketRoute route;
  std::vector<Vertex> path{static_cast<Vertex>(src)};
  Vertex at = static_cast<Vertex>(src);
  std::uint64_t hop = 0;
  if (!cell_mode) {
    // Zero-occupancy queue probe: with no live traffic UGAL degenerates to
    // its deterministic tie-break, which keeps route answers reproducible.
    const routing::QueueProbe probe = [](Vertex, Vertex) { return 0ull; };
    route = routing::source_decision(algo, *g, *t, static_cast<Vertex>(src),
                                     static_cast<Vertex>(dst), seed, probe);
    const std::size_t max_hops = 4u * t->diameter() + 16;
    while (at != static_cast<Vertex>(dst)) {
      if (hop >= max_hops)
        throw std::runtime_error("routing loop (exceeded hop budget)");
      at = routing::next_hop(*g, *t, at, static_cast<Vertex>(dst), route,
                             split_seed(seed, hop++));
      path.push_back(at);
    }
  } else {
    // Mirror source_decision under the zero-occupancy probe: UGAL's
    // q_val*h_val < q_min*h_min comparison reads 0 < 0 — always minimal —
    // so only valiant needs the intermediate, drawn from the exact
    // entropy stream source_decision uses.  Sampled hops themselves are
    // bitwise what the exact tables would pick (CellQuery contract).
    if (algo == routing::Algo::kValiant && src != dst) {
      std::uint64_t draw = 0xA11CE;
      Vertex mid = static_cast<Vertex>(split_seed(seed, draw) % n);
      while (mid == src || mid == dst)
        mid = static_cast<Vertex>(split_seed(seed, ++draw) % n);
      route.valiant = true;
      route.intermediate = mid;
    }
    routing::CellQuery cq = cell->make_query(*g);
    const std::size_t max_hops = 4u * cell->diameter_bound() + 16;
    while (at != static_cast<Vertex>(dst)) {
      if (hop >= max_hops)
        throw std::runtime_error("routing loop (exceeded hop budget)");
      const std::uint64_t e = split_seed(seed, hop++);
      if (route.valiant && route.phase == 0 && at == route.intermediate)
        route.phase = 1;
      const Vertex target = (route.valiant && route.phase == 0)
                                ? route.intermediate
                                : static_cast<Vertex>(dst);
      if (cq.dst() != target) cq.prepare(target);
      at = cq.sample_next_hop(at, e);
      path.push_back(at);
    }
  }

  std::string out = "{\"id\":" + std::to_string(id) +
                    ",\"ok\":true,\"kind\":\"route\",\"topology\":" + jstr(name) +
                    ",\"algo\":\"" + routing::algo_name(algo) +
                    "\",\"src\":" + std::to_string(src) +
                    ",\"dst\":" + std::to_string(dst) +
                    ",\"valiant\":" + (route.valiant ? "true" : "false");
  if (route.valiant)
    out += ",\"intermediate\":" + std::to_string(route.intermediate);
  out += ",\"hops\":" + std::to_string(path.size() - 1) + ",\"path\":[";
  for (std::size_t i = 0; i < path.size(); ++i)
    out += (i ? "," : "") + std::to_string(path[i]);
  out += "]}";
  return out;
}

std::string QueryEngine::handle_sim(const JsonObject& q, std::uint64_t id) {
  std::string topo;
  if (!q.get_str("topo", topo)) throw std::invalid_argument("sim needs \"topo\"");

  engine::SimScenario s;
  s.topology = register_spec(topo);

  std::string algo_str = "minimal";
  (void)q.get_str("algo", algo_str);
  s.algo = parse_algo(algo_str);

  std::string motif;
  if (q.get_str("motif", motif)) {
    s.workload.motif = parse_motif(motif);
    (void)q.get_f64("compute_ns", s.workload.motif_compute_ns);
  } else {
    std::string pattern = "random";
    (void)q.get_str("pattern", pattern);
    s.workload.pattern = parse_pattern(pattern);
  }
  (void)q.get_f64("load", s.workload.offered_load);
  std::uint64_t u = 0;
  if (q.get_u64("nranks", u)) s.workload.nranks = static_cast<std::uint32_t>(u);
  if (q.get_u64("messages", u))
    s.workload.messages_per_rank = static_cast<std::uint32_t>(u);
  if (q.get_u64("bytes", u))
    s.workload.message_bytes = static_cast<std::uint32_t>(u);
  std::string placement;
  if (q.get_str("placement", placement))
    s.workload.placement = parse_placement(placement);
  if (q.get_u64("vcs", u)) s.vcs = static_cast<std::uint32_t>(u);
  (void)q.get_f64("failure_fraction", s.failure_fraction);
  (void)q.get_u64("seed", s.seed);
  (void)q.get_str("label", s.label);

  // Same code path as the benches (Engine::evaluate_sim), same index 0 —
  // so the embedded row is byte-identical to an in-process evaluation of
  // the same request (the CI probe diffs exactly this).
  engine::SimResult r = engine_.evaluate_sim(s, 0);
  if (!r.ok) throw std::runtime_error("sim failed: " + r.error);

  std::string row = engine::jsonl_row(r);
  while (!row.empty() && (row.back() == '\n' || row.back() == '\r')) row.pop_back();
  return "{\"id\":" + std::to_string(id) +
         ",\"ok\":true,\"kind\":\"sim\",\"row\":" + row + "}";
}

std::string QueryEngine::handle_rank(const JsonObject& q, std::uint64_t id) {
  std::vector<std::string> topos;
  if (!q.get_str_array("topos", topos) || topos.empty())
    throw std::invalid_argument("rank needs a non-empty \"topos\" array");
  std::uint64_t job_size = 0;
  (void)q.get_u64("job_size", job_size);
  std::uint64_t seed = 1;
  (void)q.get_u64("seed", seed);

  struct Entry {
    std::string name;
    std::uint32_t vertices = 0;
    std::uint32_t radix = 0;
    std::uint32_t concentration = 0;
    double diameter = 0.0;
    double mean_hops = 0.0;
    double mu1 = 0.0;
    double lambda = 0.0;
    bool ramanujan = false;
    double fiedler_lb = 0.0;
    bool fits = false;
  };
  std::vector<Entry> entries;
  entries.reserve(topos.size());

  for (const std::string& spec : topos) {
    Entry e;
    e.name = register_spec(spec);
    auto art = engine_.artifacts().get(e.name);
    e.concentration = art->concentration();

    engine::Scenario st;
    st.topology = e.name;
    st.kind = engine::Kind::kStructure;
    st.bisection_restarts = 0;  // the spectral bound stands in for the cut
    st.seed = seed;
    const engine::Result rs = engine_.evaluate(st, 0);
    if (!rs.ok) throw std::runtime_error(e.name + ": " + rs.error);

    engine::Scenario sp;
    sp.topology = e.name;
    sp.kind = engine::Kind::kSpectral;
    sp.seed = seed;
    const engine::Result rp = engine_.evaluate(sp, 0);
    if (!rp.ok) throw std::runtime_error(e.name + ": " + rp.error);

    e.vertices = rs.vertices;
    e.radix = rs.radix;
    e.diameter = rs.diameter;
    e.mean_hops = rs.mean_hops;
    e.mu1 = rp.mu1;
    e.lambda = rp.lambda;
    e.ramanujan = rp.ramanujan;
    e.fiedler_lb = rp.fiedler_bisection_lb;
    e.fits = job_size == 0 ||
             job_size <= static_cast<std::uint64_t>(e.vertices) * e.concentration;
    entries.push_back(std::move(e));
  }

  // Rank: topologies that fit the job first, then by spectral gap (the
  // paper's headline quality metric), then by mean hops, name as the
  // total-order tie-break so the ranking is deterministic.
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.fits != b.fits) return a.fits;
    if (a.mu1 != b.mu1) return a.mu1 > b.mu1;
    if (a.mean_hops != b.mean_hops) return a.mean_hops < b.mean_hops;
    return a.name < b.name;
  });

  std::string out = "{\"id\":" + std::to_string(id) +
                    ",\"ok\":true,\"kind\":\"rank\",\"job_size\":" +
                    std::to_string(job_size) + ",\"ranking\":[";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    out += (i ? "," : "");
    out += "{\"topology\":" + jstr(e.name) +
           ",\"vertices\":" + std::to_string(e.vertices) +
           ",\"radix\":" + std::to_string(e.radix) +
           ",\"endpoints\":" +
           std::to_string(static_cast<std::uint64_t>(e.vertices) * e.concentration) +
           ",\"diameter\":" + fmt17(e.diameter) +
           ",\"mean_hops\":" + fmt17(e.mean_hops) + ",\"mu1\":" + fmt17(e.mu1) +
           ",\"lambda\":" + fmt17(e.lambda) +
           ",\"ramanujan\":" + (e.ramanujan ? "true" : "false") +
           ",\"fiedler_bisection_lb\":" + fmt17(e.fiedler_lb) +
           ",\"fits\":" + (e.fits ? "true" : "false") + "}";
  }
  out += "]}";
  return out;
}

std::string QueryEngine::handle_stats(const JsonObject&, std::uint64_t id) {
  std::size_t graph_b = 0, tables_b = 0, nh_b = 0, spectra_b = 0, cells_b = 0;
  const auto names = engine_.artifacts().names();
  for (const auto& name : names) {
    const auto f = engine_.artifacts().get(name)->footprint();
    graph_b += f.graph_bytes;
    tables_b += f.tables_bytes;
    nh_b += f.next_hops_bytes;
    spectra_b += f.spectra_bytes;
    cells_b += f.cells_bytes;
  }
  std::string out = "{\"id\":" + std::to_string(id) +
                    ",\"ok\":true,\"kind\":\"stats\",\"queries\":" +
                    std::to_string(queries_.load()) +
                    ",\"errors\":" + std::to_string(errors_.load()) +
                    ",\"topologies\":[";
  for (std::size_t i = 0; i < names.size(); ++i)
    out += (i ? "," : "") + jstr(names[i]);
  out += "],\"tables_built\":" + std::to_string(routing::Tables::builds()) +
         ",\"index_built\":" + std::to_string(routing::NextHopIndex::builds()) +
         ",\"cells_built\":" + std::to_string(routing::CellIndex::builds()) +
         ",\"graph_bytes\":" + std::to_string(graph_b) +
         ",\"tables_bytes\":" + std::to_string(tables_b) +
         ",\"next_hops_bytes\":" + std::to_string(nh_b) +
         ",\"cells_bytes\":" + std::to_string(cells_b) +
         ",\"spectra_bytes\":" + std::to_string(spectra_b) +
         ",\"total_bytes\":" +
         std::to_string(graph_b + tables_b + nh_b + cells_b + spectra_b) + "}";
  return out;
}

}  // namespace sfly::service
