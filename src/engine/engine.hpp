#pragma once
/// \file engine.hpp
// Parallel experiment engine (see DESIGN.md §6).
//
// The paper's figures are sweeps: topology x routing x traffic x failure
// rate x seed, each point independent given its seed.  The engine
// evaluates a batch of such Scenarios across a TaskPool, shares expensive
// per-topology artifacts (graph, routing tables, spectra) through an
// ArtifactCache, and emits structured results (CSV, util/table).
//
// Determinism: every scenario is evaluated from explicit seeds and writes
// only its own Result slot, so a batch returns bitwise-identical metrics
// whether run on 1 thread or many.

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "engine/artifact_cache.hpp"
#include "engine/scenario.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"

namespace sfly::engine {

class ResultSink;

struct EngineConfig {
  unsigned threads = 0;  // 0 = hardware_threads()
  /// Base simulator knobs (bandwidth, latencies, buffers).  Per-scenario
  /// fields (algo, vcs, seed, concentration, packet size) are overridden
  /// from the Scenario and its topology registration.
  sim::SimConfig sim;
};

class Engine {
 public:
  explicit Engine(EngineConfig cfg = {});

  /// Register a topology for scenarios to reference by name.
  void register_topology(std::string name, std::function<Graph()> build,
                         std::uint32_t concentration = 8);

  [[nodiscard]] ArtifactCache& artifacts() { return cache_; }
  [[nodiscard]] const ArtifactCache& artifacts() const { return cache_; }
  [[nodiscard]] const EngineConfig& config() const { return cfg_; }

  /// Evaluate a batch.  Results arrive in batch order; a scenario that
  /// throws (unknown topology, disconnected graph, ...) yields ok=false
  /// with the error text instead of aborting the batch.
  [[nodiscard]] std::vector<Result> run(const std::vector<Scenario>& batch);

  /// Evaluate a simulation campaign: each SimScenario runs a synthetic
  /// pattern or Ember motif through a core::Network built over the
  /// cache's shared routing tables (one all-pairs build per topology).
  /// Same batch semantics and determinism contract as run().
  [[nodiscard]] std::vector<SimResult> run_sims(
      const std::vector<SimScenario>& batch);

  /// Knobs for one streamed batch.
  struct StreamOptions {
    /// Result::index of batch[0].  A campaign running one shard (or the
    /// un-journaled suffix of a resumed batch) passes the slice's offset
    /// so every row keeps its position in the full batch.
    std::size_t index_base = 0;
    /// Graceful-stop probe, polled between in-order deliveries.  Once it
    /// returns true no further scenarios are submitted; everything
    /// already in flight is drained and delivered, so the batch ends on
    /// a clean journal prefix.  Empty = never stop.
    std::function<bool()> stop_after;
  };

  /// Streaming evaluation: fan the batch across the pool, but deliver
  /// each result to every sink strictly in batch order as workers complete
  /// them (a bounded reorder window keeps memory O(threads), not
  /// O(batch)).  run()/run_sims() are this with a CollectSink.  Sinks
  /// are invoked from the calling thread only.
  /// \return the number of results delivered — less than batch.size()
  ///         only when opts.stop_after fired.
  std::size_t run_stream(const std::vector<Scenario>& batch,
                         const std::vector<ResultSink*>& sinks);
  std::size_t run_stream(const std::vector<Scenario>& batch,
                         const std::vector<ResultSink*>& sinks,
                         const StreamOptions& opts);
  std::size_t run_sims_stream(const std::vector<SimScenario>& batch,
                              const std::vector<ResultSink*>& sinks);
  std::size_t run_sims_stream(const std::vector<SimScenario>& batch,
                              const std::vector<ResultSink*>& sinks,
                              const StreamOptions& opts);

  /// Evaluate one scenario on the calling thread (no pool).
  [[nodiscard]] Result evaluate(const Scenario& s, std::size_t index = 0);
  [[nodiscard]] SimResult evaluate_sim(const SimScenario& s,
                                       std::size_t index = 0);

  /// results -> CSV (header + one line per result), streamed through a
  /// CsvSink — both result flavors have the FILE* path.
  static void write_csv(std::FILE* out, const std::vector<Result>& results);
  static void write_csv(std::FILE* out, const std::vector<SimResult>& results);
  [[nodiscard]] static std::string csv(const std::vector<Result>& results);
  [[nodiscard]] static std::string sim_csv(const std::vector<SimResult>& results);

  /// results -> aligned console table (columns for the union of kinds).
  [[nodiscard]] static Table to_table(const std::vector<Result>& results);
  [[nodiscard]] static Table to_table(const std::vector<SimResult>& results);

 private:
  EngineConfig cfg_;
  ArtifactCache cache_;
};

}  // namespace sfly::engine
