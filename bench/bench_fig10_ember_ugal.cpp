// Fig. 10 — the Ember motifs of Fig. 9 run under UGAL routing, reported
// as speedup relative to DragonFly-UGAL.  Engine-backed via run_ember
// (one 16-scenario batch, --threads N, shared per-topology tables).

#include "ember_common.hpp"

int main(int argc, char** argv) {
  std::printf("== Fig. 10: Ember motifs, UGAL routing, speedup vs DragonFly ==\n");
  int rc = sfly::bench::run_ember(argc, argv, sfly::routing::Algo::kUgalL,
                                  "Fig. 10: Ember motifs under UGAL routing");
  std::printf(
      "\n# Paper shape: SpectralFly still ahead on Halo3D-26 and Sweep3D;\n"
      "# DragonFly-UGAL wins both FFT motifs, with SpectralFly second\n"
      "# (~90%% of DragonFly's efficiency on balanced FFT).\n");
  return rc;
}
