#pragma once
// Storage for array members that are either owned (built in-process, held
// in a std::vector) or borrowed (zero-copy views over externally owned
// memory, e.g. an mmap'd artifact snapshot — see src/service/snapshot.hpp).
//
// The accessor surface is the read-only slice of std::vector, so Graph /
// routing::Tables / routing::NextHopIndex keep their hot-path code
// unchanged while gaining view construction.  Copying an owning span
// deep-copies; copying a view copies the pointer — the borrowed memory
// must outlive every view over it (the snapshot loader guarantees this by
// keeping the mapping alive through the artifact shared_ptrs' deleters).

#include <cstddef>
#include <utility>
#include <vector>

namespace sfly {

template <typename T>
class OwnedSpan {
 public:
  OwnedSpan() = default;

  /// Take ownership of a built vector.
  OwnedSpan(std::vector<T> v) : own_(std::move(v)) { repoint(); }
  OwnedSpan& operator=(std::vector<T> v) {
    own_ = std::move(v);
    view_ = false;
    repoint();
    return *this;
  }

  /// Borrow externally owned memory (no copy; caller manages lifetime).
  static OwnedSpan view(const T* data, std::size_t n) {
    OwnedSpan s;
    s.view_ = true;
    s.data_ = data;
    s.size_ = n;
    return s;
  }

  OwnedSpan(const OwnedSpan& o) : own_(o.own_), view_(o.view_) {
    if (view_) {
      data_ = o.data_;
      size_ = o.size_;
    } else {
      repoint();
    }
  }
  OwnedSpan& operator=(const OwnedSpan& o) {
    if (this == &o) return *this;
    own_ = o.own_;
    view_ = o.view_;
    if (view_) {
      data_ = o.data_;
      size_ = o.size_;
    } else {
      repoint();
    }
    return *this;
  }
  OwnedSpan(OwnedSpan&& o) noexcept
      : own_(std::move(o.own_)), view_(o.view_) {
    if (view_) {
      data_ = o.data_;
      size_ = o.size_;
    } else {
      repoint();
    }
    o.own_.clear();
    o.view_ = false;
    o.repoint();
  }
  OwnedSpan& operator=(OwnedSpan&& o) noexcept {
    if (this == &o) return *this;
    own_ = std::move(o.own_);
    view_ = o.view_;
    if (view_) {
      data_ = o.data_;
      size_ = o.size_;
    } else {
      repoint();
    }
    o.own_.clear();
    o.view_ = false;
    o.repoint();
    return *this;
  }

  [[nodiscard]] const T* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] const T* begin() const { return data_; }
  [[nodiscard]] const T* end() const { return data_ + size_; }
  /// True when this span borrows memory it does not own.
  [[nodiscard]] bool is_view() const { return view_; }

 private:
  void repoint() {
    data_ = own_.data();
    size_ = own_.size();
  }

  std::vector<T> own_;
  bool view_ = false;
  const T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace sfly
