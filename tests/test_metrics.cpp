#include "graph/metrics.hpp"

#include <gtest/gtest.h>

namespace sfly {
namespace {

Graph cycle_graph(Vertex n) {
  std::vector<std::pair<Vertex, Vertex>> e;
  for (Vertex i = 0; i < n; ++i) e.emplace_back(i, (i + 1) % n);
  return Graph::from_edges(n, std::move(e));
}

Graph complete_graph(Vertex n) {
  std::vector<std::pair<Vertex, Vertex>> e;
  for (Vertex i = 0; i < n; ++i)
    for (Vertex j = i + 1; j < n; ++j) e.emplace_back(i, j);
  return Graph::from_edges(n, std::move(e));
}

Graph petersen() {
  // Outer 5-cycle 0..4, inner pentagram 5..9, spokes i -- i+5.
  std::vector<std::pair<Vertex, Vertex>> e;
  for (Vertex i = 0; i < 5; ++i) {
    e.emplace_back(i, (i + 1) % 5);
    e.emplace_back(i + 5, (i + 2) % 5 + 5);
    e.emplace_back(i, i + 5);
  }
  return Graph::from_edges(10, std::move(e));
}

Graph hypercube(unsigned d) {
  Vertex n = 1u << d;
  std::vector<std::pair<Vertex, Vertex>> e;
  for (Vertex v = 0; v < n; ++v)
    for (unsigned b = 0; b < d; ++b)
      if (!(v & (1u << b))) e.emplace_back(v, v | (1u << b));
  return Graph::from_edges(n, std::move(e));
}

TEST(Metrics, BfsDistancesOnCycle) {
  auto d = bfs_distances(cycle_graph(8), 0);
  EXPECT_EQ(d[0], 0);
  EXPECT_EQ(d[1], 1);
  EXPECT_EQ(d[4], 4);
  EXPECT_EQ(d[7], 1);
}

TEST(Metrics, DistanceStatsCycle) {
  auto s = distance_stats(cycle_graph(8));
  EXPECT_TRUE(s.connected);
  EXPECT_EQ(s.diameter, 4);
  // Mean distance on C8: (1+2+3+4+3+2+1)/7 = 16/7.
  EXPECT_NEAR(s.mean_distance, 16.0 / 7.0, 1e-12);
  // Histogram: 8 vertices * 2 at distance 1,2,3; *1 at distance 4.
  ASSERT_EQ(s.histogram.size(), 5u);
  EXPECT_EQ(s.histogram[1], 16u);
  EXPECT_EQ(s.histogram[4], 8u);
}

TEST(Metrics, DistanceStatsComplete) {
  auto s = distance_stats(complete_graph(7));
  EXPECT_EQ(s.diameter, 1);
  EXPECT_DOUBLE_EQ(s.mean_distance, 1.0);
}

TEST(Metrics, HypercubeDiameterAndMean) {
  auto s = distance_stats(hypercube(4));
  EXPECT_EQ(s.diameter, 4);
  EXPECT_NEAR(s.mean_distance, 4 * 8.0 / 15.0 * 1.0, 1e-9);
  // Mean distance of Q_d is d*2^(d-1)/(2^d - 1) = 32/15 for d=4.
  EXPECT_NEAR(s.mean_distance, 32.0 / 15.0, 1e-9);
}

TEST(Metrics, GirthKnownGraphs) {
  EXPECT_EQ(girth(cycle_graph(9)), 9u);
  EXPECT_EQ(girth(complete_graph(4)), 3u);
  EXPECT_EQ(girth(petersen()), 5u);
  EXPECT_EQ(girth(hypercube(3)), 4u);
}

TEST(Metrics, GirthForest) {
  auto g = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(girth(g), 0u);
}

TEST(Metrics, Components) {
  auto g = Graph::from_edges(6, {{0, 1}, {1, 2}, {3, 4}});
  EXPECT_EQ(num_components(g), 3u);  // {0,1,2}, {3,4}, {5}
  EXPECT_FALSE(is_connected(g));
  EXPECT_TRUE(is_connected(cycle_graph(5)));
}

TEST(Metrics, DisconnectedStatsFlag) {
  auto g = Graph::from_edges(4, {{0, 1}, {2, 3}});
  auto s = distance_stats(g);
  EXPECT_FALSE(s.connected);
}

TEST(Metrics, Bipartiteness) {
  std::vector<std::uint8_t> side;
  EXPECT_TRUE(is_bipartite(cycle_graph(8), &side));
  EXPECT_NE(side[0], side[1]);
  EXPECT_FALSE(is_bipartite(cycle_graph(7)));
  EXPECT_TRUE(is_bipartite(hypercube(4)));
  EXPECT_FALSE(is_bipartite(petersen()));
}

TEST(Metrics, Eccentricity) {
  auto g = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(eccentricity(g, 0), 3);
  EXPECT_EQ(eccentricity(g, 1), 2);
}

}  // namespace
}  // namespace sfly
