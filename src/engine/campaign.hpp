#pragma once
/// \file campaign.hpp
/// Declarative campaign layer (see DESIGN.md §6 and docs/CAMPAIGNS.md).
///
/// The paper's evaluation is a grid of sweeps — topology x routing x
/// traffic x failure x seed.  A CampaignBuilder *declares* the sweep axes
/// (in nesting order: the first declared axis is the outermost loop) plus
/// per-axis filters and per-point hooks, and the engine owns expansion
/// into Scenario / SimScenario batches: no bench hand-rolls nested loops.
/// A Campaign strings named phases (grids) over one Engine, supports
/// dry-run planning (scenario counts, axis shapes, artifact builds —
/// nothing is evaluated), and executes phases through the engine's
/// streaming sinks.  AdaptiveSweep adds the Fig. 5 shape: a point grid
/// whose per-point trial count is scheduled in waves under the paper's
/// CoV stopping rule.
///
/// Execution takes an optional RunControl — the checkpoint/restart
/// surface: resume from a `--json` journal (engine/journal.hpp), run
/// one `--shard I/N` slice of every batch, stop gracefully on a
/// `--max-seconds` wall-clock budget.
///
/// Determinism: expansion is a pure function of the declaration, and
/// execution inherits the engine's serial==parallel bitwise contract —
/// which extends across kill/resume cycles and shard splits.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "engine/scenario.hpp"

namespace sfly::engine {

class CampaignJournal;
class BatchRunner;

/// Install SIGTERM/SIGINT handlers that request a graceful campaign
/// stop: the run finishes at the next row boundary, sinks flush, the
/// journal stays resumable, and the bench exits 75 — exactly the
/// --max-seconds path, but operator-initiated.  A second signal while
/// the first is still draining force-exits 128+sig (the escape hatch
/// when a scenario evaluation is stuck).  Idempotent.
void install_stop_signal_handlers();
/// The signal requesting a graceful stop (0 = none yet).  Folded into
/// RunControl::over_budget(), so every budget-stop code path — engine
/// submission windows, dispatcher fleets, worker slices — honors it.
[[nodiscard]] int stop_signal_seen();

/// Execution controls + outcome for Campaign::run / AdaptiveSweep::run —
/// the checkpoint/restart surface behind `--resume`, `--shard` and
/// `--max-seconds` (see docs/CAMPAIGNS.md §Resume).  One RunControl can
/// span several campaigns/sweeps in a process (e.g. fig5's two size
/// classes): the journal cursor and the wall-clock budget carry across.
struct RunControl {
  RunControl() : start(std::chrono::steady_clock::now()) {}

  /// Journal of a previous (killed or budget-stopped) run over the SAME
  /// declaration: rows are consumed positionally, validated against the
  /// expanded scenarios, replayed into collecting sinks, and skipped by
  /// the evaluator.  Null = fresh run.
  const CampaignJournal* journal = nullptr;
  /// Shard `shard_index` of `shard_count`: each batch is restricted to
  /// its contiguous shard_range() slice (rows keep their full-batch
  /// indices).  Shard journals merge back to the unsharded byte stream
  /// with CampaignJournal::merge.
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  /// Wall-clock budget in seconds, measured from `start`; 0 = unlimited.
  /// When exceeded, in-flight scenarios drain, sinks flush, and run()
  /// returns with `stopped` set — the journal ends on a clean batch
  /// prefix a later `--resume` continues from.  Every invocation makes
  /// progress (at least one submission window) even under a tiny budget.
  double max_seconds = 0.0;
  /// Wall-clock origin for max_seconds (defaults to construction time,
  /// i.e. roughly process start when built by StandardOptions).
  std::chrono::steady_clock::time_point start;
  /// Pluggable batch evaluator (engine/dispatch.hpp): when set, every
  /// batch is handed here instead of Engine::run_stream — the `--workers`
  /// multi-process dispatcher on the parent side, the pipe-fed slice
  /// evaluator on the worker side.  Non-owning; null = evaluate in-process.
  BatchRunner* runner = nullptr;
  /// Suppress bench-side stderr notices (replay/budget epilogues).  Set
  /// for `--worker-fd` processes, which share the parent's stderr: the
  /// parent reports once for the whole fleet.
  bool quiet = false;

  // --- outcome ---------------------------------------------------------
  bool stopped = false;        ///< budget fired before completion
  std::size_t replayed = 0;    ///< rows skipped via the journal
  std::size_t evaluated = 0;   ///< scenarios actually evaluated this run
  std::size_t journal_cursor = 0;  ///< segments consumed (internal state)

  [[nodiscard]] bool over_budget() const {
    if (stop_signal_seen() != 0) return true;
    return max_seconds > 0.0 &&
           std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
                   .count() >= max_seconds;
  }

  /// Journal segments never reached by the run(s) sharing this control.
  /// Nonzero after a *completed* (non-stopped) run means the journal was
  /// written under different flags whose early batches happened to
  /// coincide — the caller must treat it as a hard error, because fresh
  /// rows have been appended after the stale tail.
  [[nodiscard]] std::size_t unconsumed_segments() const;
};

/// One topology axis value: the artifact-cache registration key plus the
/// deferred graph builder.  `vertices`/`radix` are optional metadata so
/// topology filters can select instances without building any graph
/// (design-space sweeps enumerate hundreds of candidates).
struct TopologySpec {
  std::string name;
  std::function<Graph()> build;
  std::uint32_t concentration = 8;
  std::uint64_t vertices = 0;
  std::uint32_t radix = 0;
};

/// One motif axis value: display name + factory (motifs are stateful, so
/// every evaluation constructs a fresh instance).
struct MotifSpec {
  std::string name;
  std::function<std::unique_ptr<sim::Motif>()> factory;
};

/// Declares one sweep grid.  Axis setters append in call order; the first
/// declared axis is the outermost expansion loop (row-major).  The proto
/// scenario carries every non-axis knob.
class CampaignBuilder {
 public:
  CampaignBuilder();

  /// The base scenario every grid point starts from (kind, structure /
  /// layout knobs, workload defaults, base seed, ...).
  [[nodiscard]] Scenario& proto() { return proto_; }
  [[nodiscard]] const Scenario& proto() const { return proto_; }

  // --- axes (call order = nesting order, first call outermost) ---------
  CampaignBuilder& kinds(std::vector<Kind> v);
  CampaignBuilder& topologies(std::vector<TopologySpec> v,
                              std::function<bool(const TopologySpec&)> filter = {},
                              std::size_t limit = 0);
  CampaignBuilder& algos(std::vector<routing::Algo> v);
  CampaignBuilder& patterns(std::vector<sim::Pattern> v);
  CampaignBuilder& motifs(std::vector<MotifSpec> v);
  CampaignBuilder& loads(std::vector<double> v);
  CampaignBuilder& vc_overrides(std::vector<std::uint32_t> v);
  CampaignBuilder& placements(std::vector<sim::PlacementPolicy> v);
  CampaignBuilder& failure_fractions(std::vector<double> v);
  /// Mid-run churn timelines (bench_churn's availability axis); values
  /// label as churn_label(spec) — "none", "2L", "1R~", ...
  CampaignBuilder& churns(std::vector<ChurnSpec> v);
  CampaignBuilder& restarts(std::vector<int> v);  // bisection restart budgets
  CampaignBuilder& seeds(std::vector<std::uint64_t> v);
  CampaignBuilder& seed_range(std::uint64_t base, std::size_t count);

  // --- per-point hooks -------------------------------------------------
  /// Mutate every expanded point (after axes applied, before filters);
  /// multiple hooks run in registration order.
  CampaignBuilder& each(std::function<void(Scenario&)> fn);
  /// Drop expanded points the predicate rejects.  Filtered grids lose
  /// coordinate indexing (Phase::at) but keep declaration order.
  CampaignBuilder& filter(std::function<bool(const Scenario&)> fn);
  /// Label attached to expanded SimScenarios (default: the motif axis
  /// value's name, else empty).
  CampaignBuilder& label(std::function<std::string(const Scenario&)> fn);

  // --- expansion -------------------------------------------------------
  /// Register every topology axis value carrying a builder with `eng`.
  void register_with(Engine& eng) const;
  [[nodiscard]] std::vector<Scenario> expand() const;
  [[nodiscard]] std::vector<SimScenario> expand_sims() const;

  // --- shape -----------------------------------------------------------
  [[nodiscard]] std::size_t grid_size() const;  // product of axis sizes
  [[nodiscard]] const std::vector<std::size_t>& axis_sizes() const {
    return sizes_;
  }
  /// "pattern(4) x load(6) x topology(4)" — the declared nesting order.
  [[nodiscard]] std::string shape() const;
  /// Topology axis values after filter/limit (declaration order); empty
  /// if the grid has no topology axis (proto names the topology).
  [[nodiscard]] std::vector<std::string> topology_names() const;
  /// The filtered TopologySpecs themselves (metadata drives result
  /// tables, e.g. the design-space sweep's vertices/radix columns).
  [[nodiscard]] const std::vector<TopologySpec>& topology_specs() const {
    return topo_specs_;
  }

 private:
  struct Axis {
    std::string name;
    std::vector<std::function<void(Scenario&)>> setters;
    std::vector<std::string> labels;  // per-value display names
    bool labeled = false;             // labels feed SimScenario::label
  };
  void add_axis(Axis axis);
  void visit_points(
      const std::function<void(Scenario&&, std::string&&)>& emit) const;

  Scenario proto_;
  std::vector<Axis> axes_;
  std::vector<std::size_t> sizes_;
  std::vector<TopologySpec> topo_specs_;
  std::vector<std::function<void(Scenario&)>> hooks_;
  std::vector<std::function<bool(const Scenario&)>> filters_;
  std::function<std::string(const Scenario&)> label_fn_;
};

/// One named grid inside a Campaign: the builder, its expanded batch, and
/// (after Campaign::run) the collected results with coordinate access.
class Phase {
 public:
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool is_sim() const { return sim_; }
  [[nodiscard]] bool deferred() const { return static_cast<bool>(make_); }
  /// Scenario count: exact once expanded, the declared estimate before a
  /// deferred phase materializes.
  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] const CampaignBuilder& grid() const { return grid_; }
  [[nodiscard]] const std::vector<Scenario>& scenarios() const {
    return scenarios_;
  }
  [[nodiscard]] const std::vector<SimScenario>& sims() const { return sims_; }
  [[nodiscard]] const std::vector<Result>& results() const { return results_; }
  [[nodiscard]] const std::vector<SimResult>& sim_results() const {
    return sim_results_;
  }

  /// Row-major coordinate access in axis declaration order; throws
  /// std::logic_error on a filtered grid (expansion != full product) or
  /// before the phase has run.
  [[nodiscard]] const Result& at(std::initializer_list<std::size_t> coords) const;
  [[nodiscard]] const SimResult& sim_at(
      std::initializer_list<std::size_t> coords) const;

  [[nodiscard]] double eval_seconds() const { return eval_seconds_; }

 private:
  friend class Campaign;
  Phase(std::string name, CampaignBuilder grid, bool sim);
  Phase(std::string name, std::size_t estimate,
        std::function<CampaignBuilder(Engine&)> make);
  void expand_into_batches();
  [[nodiscard]] std::size_t flat_index(
      std::initializer_list<std::size_t> coords, std::size_t have) const;

  std::string name_;
  bool sim_ = false;
  CampaignBuilder grid_;
  std::size_t estimate_ = 0;
  std::function<CampaignBuilder(Engine&)> make_;  // deferred phases only
  std::vector<Scenario> scenarios_;
  std::vector<SimScenario> sims_;
  std::vector<Result> results_;
  std::vector<SimResult> sim_results_;
  double eval_seconds_ = 0.0;
};

/// A bench's whole declared evaluation: named phases over one Engine.
/// Phases execute in declaration order; every result streams through the
/// caller's sinks (begin/end bracket each phase's batch) and also
/// collects into the phase for indexed post-processing.
class Campaign {
 public:
  Campaign(Engine& eng, std::string name);

  /// Add an analytic (Scenario) phase; topologies register immediately.
  Phase& analytic(std::string name, CampaignBuilder grid);
  /// Add a simulation (SimScenario) phase; topologies register immediately.
  Phase& sims(std::string name, CampaignBuilder grid);
  /// Add a simulation phase whose grid can only be built at execution
  /// time (axes depending on earlier phases' artifacts, e.g. a VC sweep
  /// derived from the cached tables' diameter).  `estimate` feeds the
  /// dry-run plan.
  Phase& sims_deferred(std::string name, std::size_t estimate,
                       std::function<CampaignBuilder(Engine&)> make);

  /// Print the expanded plan — per-phase scenario counts, axis shapes,
  /// and new topology artifact builds — without evaluating anything.
  void print_plan(std::FILE* out = stdout) const;

  /// Force every phase topology's artifacts to materialize now (sim
  /// phases: graph + tables + next-hop index; analytic: graph only) and
  /// record the build wall-clock, so --profile / perf records separate
  /// one-off construction from scenario evaluation.
  double materialize_artifacts();

  /// Execute every phase in declaration order.
  void run(const std::vector<ResultSink*>& sinks = {});
  /// Execute under a RunControl: resume from a journal, restrict every
  /// batch to one shard, and/or stop gracefully on a wall-clock budget.
  /// Journal/declaration mismatches throw std::runtime_error.  After a
  /// stopped or sharded run the phases hold partial result vectors, so
  /// coordinate access (Phase::at) is off the table — stream sinks are
  /// the output surface for those runs.
  void run(const std::vector<ResultSink*>& sinks, RunControl& ctl);

  [[nodiscard]] Phase& phase(const std::string& name);
  /// All phases in declaration order (the --phase-json record walks them).
  [[nodiscard]] const std::vector<std::unique_ptr<Phase>>& phases() const {
    return phases_;
  }
  [[nodiscard]] Engine& engine() { return eng_; }
  [[nodiscard]] const Engine& engine() const { return eng_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t total_scenarios() const;
  [[nodiscard]] double eval_seconds() const;
  [[nodiscard]] double artifact_build_seconds() const { return build_seconds_; }

 private:
  Engine& eng_;
  std::string name_;
  std::vector<std::unique_ptr<Phase>> phases_;
  double build_seconds_ = 0.0;
};

// ---------------------------------------------------------------------------
// Adaptive trial scheduling (the Fig. 5 shape).

/// Prefix selected by the paper's batch/CoV stopping rule (footnote 1)
/// over per-trial metric values: batches of size len/10; converged when
/// the CoV of the 10 batch means drops below `cov_target`.  `converged`
/// distinguishes the rule firing from running out of values — the wave
/// scheduler needs that distinction even when both return every value.
struct CovPrefix {
  std::size_t use = 0;
  bool converged = false;
};

[[nodiscard]] CovPrefix cov_prefix(const std::vector<double>& vals,
                                   double cov_target);

/// A point grid (from a CampaignBuilder) where each point contributes
/// seeded trials until the CoV rule converges or `max_trials` is
/// exhausted.  Trials are scheduled in waves (each point advances to its
/// next checkpoint: 10, 100, 1000, ... trials), every wave runs as one
/// engine batch, and the rule retires points between waves — converged
/// points stop consuming trials while unconverged ones keep the engine's
/// parallelism.  Trial seeds derive only from (seed_base, trial number),
/// never the wave split, so results are bitwise-identical at any thread
/// count and to the precompute-everything schedule.
class AdaptiveSweep {
 public:
  struct Config {
    /// Journal identity: the "campaign" field of this sweep's batch
    /// headers.  Distinguishes multiple sweeps in one process (fig5's
    /// two size classes) when resuming.
    std::string name = "adaptive";
    std::uint64_t max_trials = 10;
    std::uint64_t seed_base = 9177;
    double cov_target = 0.10;
    /// Results entering the per-point series (default: ok && connected).
    std::function<bool(const Result&)> keep;
    /// Convergence metric over kept results (default: mean_hops).
    std::function<double(const Result&)> metric;
    /// Per-point trial budget (default: deterministic points — failure
    /// fraction 0 — run once; everything else up to max_trials).
    std::function<std::uint64_t(const Scenario&)> trial_cap;
  };

  struct PointState {
    Scenario point;               // trial template (seed overwritten per trial)
    std::size_t scheduled = 0;    // trials submitted so far
    bool converged = false;       // rule fired or budget exhausted
    std::vector<Result> kept;     // kept results in trial order
    std::vector<double> metric_vals;
  };

  AdaptiveSweep(Engine& eng, CampaignBuilder points, Config cfg);
  AdaptiveSweep(Engine& eng, CampaignBuilder points)
      : AdaptiveSweep(eng, std::move(points), Config{}) {}

  /// Wave loop; each wave's results stream through `sinks` in batch order.
  void run(const std::vector<ResultSink*>& sinks = {});
  /// Wave loop under a RunControl (resume + wall-clock budget).  Journal
  /// replay feeds the CoV rule the exact historical values (%.17g rows
  /// round-trip bitwise), so the reconstructed wave schedule — and hence
  /// the byte stream — matches an uninterrupted run.  Sharding is
  /// rejected: wave composition depends on every point's results, which
  /// no single shard holds.
  void run(const std::vector<ResultSink*>& sinks, RunControl& ctl);

  [[nodiscard]] const std::vector<PointState>& points() const {
    return points_;
  }
  /// Scenario-evaluation wall-clock across all waves so far.
  [[nodiscard]] double eval_seconds() const { return eval_seconds_; }
  /// Waves executed (or replayed) so far.
  [[nodiscard]] std::size_t waves() const { return waves_; }
  /// CoV-selected prefix length for a point's kept series.
  [[nodiscard]] std::size_t converged_prefix(std::size_t point) const;

  /// Dry-run plan: point grid shape, wave schedule, worst-case trials.
  void print_plan(std::FILE* out = stdout) const;

 private:
  Engine& eng_;
  CampaignBuilder grid_;
  Config cfg_;
  std::vector<PointState> points_;
  double eval_seconds_ = 0.0;
  std::size_t waves_ = 0;
};

}  // namespace sfly::engine
