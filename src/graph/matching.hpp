#pragma once
// Maximal matchings.  Used by the physical-layout module (Section VII):
// matched router pairs share a cabinet so their link becomes a cheap 2 m
// intra-cabinet wire.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace sfly {

/// match[v] = partner vertex, or kUnmatched.
inline constexpr Vertex kUnmatched = static_cast<Vertex>(-1);

/// Randomized greedy maximal matching with `restarts` attempts plus a
/// single augmenting-path improvement sweep; returns the best matching
/// found (most matched vertices). Deterministic for a fixed seed.
[[nodiscard]] std::vector<Vertex> maximal_matching(const Graph& g,
                                                   std::uint64_t seed = 1,
                                                   int restarts = 8);

/// Number of matched pairs in a matching vector.
[[nodiscard]] std::size_t matching_size(const std::vector<Vertex>& match);

}  // namespace sfly
