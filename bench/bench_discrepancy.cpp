// Discrepancy and job-placement contention (Section II's Fig. 1 argument):
// the Ramanujan spectral gap bounds the deviation of edge counts between
// *arbitrary* vertex subsets, which the paper argues makes SpectralFly
// insensitive to job placement and inter-job contention.  This bench
// (a) measures empirical discrepancy across the four families and
// (b) compares clustered vs random job placement sensitivity in the
// simulator.

#include "bench_common.hpp"

#include "spectral/discrepancy.hpp"

using namespace sfly;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  bench::Flags::usage(
      "Discrepancy property + job-placement sensitivity",
      "#   --samples N  subset pairs sampled per topology (default 150)");
  const std::uint32_t samples =
      static_cast<std::uint32_t>(flags.get("--samples", flags.full() ? 600 : 150));

  // --- empirical discrepancy ------------------------------------------
  {
    Table t({"Topology", "lambda(G)", "Worst observed deviation", "Headroom"});
    struct Subject {
      std::string name;
      Graph graph;
    };
    std::vector<Subject> subjects;
    subjects.push_back({"LPS(23,11)", topo::lps_graph({23, 11})});
    subjects.push_back({"SF(17)", topo::slimfly_graph({17})});
    subjects.push_back({"BF(37,3)",
                        topo::bundlefly_graph({37, 3, topo::BundleShift::kAffine})});
    subjects.push_back({"DF(24)",
                        topo::dragonfly_graph(topo::DragonFlyParams::canonical(24))});
    for (const auto& s : subjects) {
      auto r = measure_discrepancy(s.graph, samples, 0.25, 77);
      t.add_row({s.name, Table::num(r.lambda_bound, 2),
                 Table::num(r.max_observed, 2),
                 Table::num(r.lambda_bound / std::max(r.max_observed, 1e-9), 2)});
    }
    std::printf("== Expander-mixing discrepancy (lower deviation = fewer "
                "bottlenecks between arbitrary subsets) ==\n");
    t.print();
    std::printf("# LPS's lambda — and with it the worst subset-pair deviation —\n"
                "# is a fraction of DragonFly's at the same radix.\n\n");
  }

  // --- job-placement sensitivity ---------------------------------------
  {
    auto topos = bench::simulation_topologies(false);
    Table t({"Topology", "Random placement (us)", "Clustered placement (us)",
             "Clustered/Random"});
    for (const auto& tp : {topos[0], topos[1]}) {  // SpectralFly, DragonFly
      double lat[2];
      int idx = 0;
      for (auto policy :
           {sim::PlacementPolicy::kRandom, sim::PlacementPolicy::kClustered}) {
        core::NetworkOptions opts;
        opts.concentration = tp.concentration;
        opts.routing = routing::Algo::kMinimal;
        auto net = core::Network::from_graph(tp.name, tp.graph, opts);
        auto simulator = net.make_simulator(42);
        sim::SyntheticLoad load;
        load.pattern = sim::Pattern::kRandom;
        load.nranks = 512;
        load.messages_per_rank = 16;
        load.offered_load = 0.5;
        load.placement = policy;
        lat[idx++] = run_synthetic(*simulator, load).max_latency_ns / 1000.0;
      }
      t.add_row({tp.name, Table::num(lat[0], 1), Table::num(lat[1], 1),
                 Table::num(lat[1] / lat[0], 2)});
    }
    std::printf("== Placement sensitivity (max message time) ==\n");
    t.print();
    std::printf("# The discrepancy property predicts SpectralFly's ratio stays\n"
                "# closer to 1.0: any induced sub-network keeps high bisection.\n");
  }
  return 0;
}
