#include "routing/next_hop_index.hpp"

#include <limits>
#include <stdexcept>

namespace sfly::routing {

NextHopIndex NextHopIndex::build(const Graph& g, const Tables& tables) {
  const Vertex n = g.num_vertices();
  if (tables.num_vertices() != n)
    throw std::invalid_argument("NextHopIndex: tables/graph mismatch");

  for (Vertex u = 0; u < n; ++u)
    if (g.degree(u) > std::numeric_limits<std::uint16_t>::max() + 1ull)
      throw std::invalid_argument("NextHopIndex: radix exceeds uint16 slots");

  NextHopIndex idx;
  idx.n_ = n;
  const std::size_t rows = static_cast<std::size_t>(n) * n;
  idx.offsets_.assign(rows + 1, 0);

  // Pass 1: per-row counts (written as offsets_[row + 1] so the prefix sum
  // below lands each row's base at offsets_[row]).
#pragma omp parallel for schedule(dynamic, 8)
  for (std::int64_t u = 0; u < static_cast<std::int64_t>(n); ++u) {
    const auto nb = g.neighbors(static_cast<Vertex>(u));
    for (Vertex v = 0; v < n; ++v) {
      if (static_cast<Vertex>(u) == v) continue;
      const std::uint8_t du = tables.distance(static_cast<Vertex>(u), v);
      std::uint32_t c = 0;
      for (Vertex w : nb)
        if (tables.distance(w, v) + 1 == du) ++c;
      idx.offsets_[static_cast<std::size_t>(u) * n + v + 1] = c;
    }
  }
  for (std::size_t r = 0; r < rows; ++r) idx.offsets_[r + 1] += idx.offsets_[r];

  const std::size_t entries = idx.offsets_[rows];
  idx.verts_.resize(entries);
  idx.slots_.resize(entries);

  // Pass 2: fill, preserving adjacency (= scan) order within each row.
#pragma omp parallel for schedule(dynamic, 8)
  for (std::int64_t u = 0; u < static_cast<std::int64_t>(n); ++u) {
    const auto nb = g.neighbors(static_cast<Vertex>(u));
    for (Vertex v = 0; v < n; ++v) {
      if (static_cast<Vertex>(u) == v) continue;
      const std::uint8_t du = tables.distance(static_cast<Vertex>(u), v);
      std::uint32_t at = idx.offsets_[static_cast<std::size_t>(u) * n + v];
      for (std::size_t s = 0; s < nb.size(); ++s) {
        if (tables.distance(nb[s], v) + 1 == du) {
          idx.verts_[at] = nb[s];
          idx.slots_[at] = static_cast<std::uint16_t>(s);
          ++at;
        }
      }
    }
  }
  return idx;
}

}  // namespace sfly::routing
