#include "partition/bisection.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/rng.hpp"

namespace sfly {
namespace {

// Weighted graph used internally during coarsening.
struct WGraph {
  std::vector<std::uint32_t> offsets;
  std::vector<Vertex> adj;
  std::vector<std::uint32_t> ewgt;   // parallel to adj
  std::vector<std::uint32_t> vwgt;   // per vertex
  [[nodiscard]] Vertex n() const { return static_cast<Vertex>(vwgt.size()); }
  [[nodiscard]] std::uint64_t total_vwgt() const {
    return std::accumulate(vwgt.begin(), vwgt.end(), std::uint64_t{0});
  }
};

WGraph to_wgraph(const Graph& g) {
  WGraph w;
  const Vertex n = g.num_vertices();
  w.vwgt.assign(n, 1);
  w.offsets.assign(n + 1, 0);
  for (Vertex v = 0; v < n; ++v) w.offsets[v + 1] = w.offsets[v] + g.degree(v);
  w.adj.resize(w.offsets.back());
  w.ewgt.assign(w.offsets.back(), 1);
  for (Vertex v = 0; v < n; ++v) {
    auto nb = g.neighbors(v);
    std::copy(nb.begin(), nb.end(), w.adj.begin() + w.offsets[v]);
  }
  return w;
}

// Heavy-edge matching; returns coarse graph and fine->coarse map.
struct CoarseLevel {
  WGraph graph;
  std::vector<Vertex> map;  // fine vertex -> coarse vertex
};

CoarseLevel coarsen(const WGraph& g, Rng& rng) {
  const Vertex n = g.n();
  std::vector<Vertex> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::shuffle(order.begin(), order.end(), rng);

  std::vector<Vertex> match(n, static_cast<Vertex>(-1));
  for (Vertex u : order) {
    if (match[u] != static_cast<Vertex>(-1)) continue;
    Vertex best = u;  // allow staying single
    std::uint32_t best_w = 0;
    for (std::uint32_t e = g.offsets[u]; e < g.offsets[u + 1]; ++e) {
      Vertex v = g.adj[e];
      if (v == u || match[v] != static_cast<Vertex>(-1)) continue;
      if (g.ewgt[e] > best_w) {
        best_w = g.ewgt[e];
        best = v;
      }
    }
    match[u] = best;
    match[best] = u;
  }

  CoarseLevel out;
  out.map.assign(n, 0);
  Vertex nc = 0;
  for (Vertex v = 0; v < n; ++v) {
    if (match[v] >= v) out.map[v] = nc++;  // v is representative (match[v]==v or >v)
  }
  for (Vertex v = 0; v < n; ++v)
    if (match[v] < v) out.map[v] = out.map[match[v]];

  // Aggregate edges into the coarse graph via hashing per coarse vertex.
  std::vector<std::vector<std::pair<Vertex, std::uint32_t>>> buckets(nc);
  out.graph.vwgt.assign(nc, 0);
  for (Vertex v = 0; v < n; ++v) out.graph.vwgt[out.map[v]] += g.vwgt[v];
  for (Vertex u = 0; u < n; ++u) {
    Vertex cu = out.map[u];
    for (std::uint32_t e = g.offsets[u]; e < g.offsets[u + 1]; ++e) {
      Vertex cv = out.map[g.adj[e]];
      if (cu == cv) continue;
      buckets[cu].emplace_back(cv, g.ewgt[e]);
    }
  }
  out.graph.offsets.assign(nc + 1, 0);
  for (Vertex c = 0; c < nc; ++c) {
    auto& b = buckets[c];
    std::sort(b.begin(), b.end());
    // Merge parallel edges.
    std::size_t w = 0;
    for (std::size_t i = 0; i < b.size();) {
      std::size_t j = i;
      std::uint32_t sum = 0;
      while (j < b.size() && b[j].first == b[i].first) sum += b[j++].second;
      b[w++] = {b[i].first, sum};
      i = j;
    }
    b.resize(w);
    out.graph.offsets[c + 1] = out.graph.offsets[c] + static_cast<std::uint32_t>(w);
  }
  out.graph.adj.resize(out.graph.offsets.back());
  out.graph.ewgt.resize(out.graph.offsets.back());
  for (Vertex c = 0; c < nc; ++c) {
    std::uint32_t at = out.graph.offsets[c];
    for (auto [v, wt] : buckets[c]) {
      out.graph.adj[at] = v;
      out.graph.ewgt[at] = wt;
      ++at;
    }
  }
  return out;
}

std::uint64_t cut_of(const WGraph& g, const std::vector<std::uint8_t>& side) {
  std::uint64_t cut = 0;
  for (Vertex u = 0; u < g.n(); ++u)
    for (std::uint32_t e = g.offsets[u]; e < g.offsets[u + 1]; ++e)
      if (side[u] != side[g.adj[e]]) cut += g.ewgt[e];
  return cut / 2;
}

// Greedy BFS region growing to half the total vertex weight.
std::vector<std::uint8_t> grow_partition(const WGraph& g, Rng& rng) {
  const Vertex n = g.n();
  const std::uint64_t half = g.total_vwgt() / 2;
  std::vector<std::uint8_t> side(n, 1);
  std::vector<Vertex> queue;
  std::vector<std::uint8_t> seen(n, 0);
  Vertex start = static_cast<Vertex>(uniform_below(rng, n));
  queue.push_back(start);
  seen[start] = 1;
  std::uint64_t grown = 0;
  for (std::size_t head = 0; head < queue.size() && grown < half; ++head) {
    Vertex u = queue[head];
    if (grown + g.vwgt[u] > half + g.vwgt[u] / 2 && grown > 0) continue;
    side[u] = 0;
    grown += g.vwgt[u];
    for (std::uint32_t e = g.offsets[u]; e < g.offsets[u + 1]; ++e) {
      Vertex v = g.adj[e];
      if (!seen[v]) {
        seen[v] = 1;
        queue.push_back(v);
      }
    }
  }
  // If BFS exhausted a small component, assign remaining randomly.
  for (Vertex v = 0; v < n && grown < half; ++v) {
    if (side[v] == 1) {
      side[v] = 0;
      grown += g.vwgt[v];
    }
  }
  return side;
}

// One FM pass: tentatively move every vertex once (best-gain first subject
// to balance), then roll back to the best prefix. Returns true if the cut
// or balance improved.
bool fm_pass(const WGraph& g, std::vector<std::uint8_t>& side,
             std::uint64_t max_side_wgt) {
  const Vertex n = g.n();
  std::vector<std::int64_t> gain(n, 0);
  std::uint64_t wgt[2] = {0, 0};
  for (Vertex v = 0; v < n; ++v) wgt[side[v]] += g.vwgt[v];
  for (Vertex u = 0; u < n; ++u) {
    std::int64_t gn = 0;
    for (std::uint32_t e = g.offsets[u]; e < g.offsets[u + 1]; ++e)
      gn += (side[g.adj[e]] != side[u]) ? g.ewgt[e] : -static_cast<std::int64_t>(g.ewgt[e]);
    gain[u] = gn;
  }

  std::vector<std::uint8_t> locked(n, 0);
  std::vector<Vertex> moves;
  moves.reserve(n);
  std::int64_t cum = 0, best_cum = 0;
  std::size_t best_prefix = 0;

  // Lazy max-heap of (gain, vertex); stale entries are skipped on pop.
  std::vector<std::pair<std::int64_t, Vertex>> heap;
  heap.reserve(2 * n);
  for (Vertex v = 0; v < n; ++v) heap.emplace_back(gain[v], v);
  std::make_heap(heap.begin(), heap.end());
  std::vector<std::pair<std::int64_t, Vertex>> deferred;  // balance-blocked

  for (Vertex step = 0; step < n; ++step) {
    Vertex pick = static_cast<Vertex>(-1);
    std::int64_t pick_gain = 0;
    deferred.clear();
    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end());
      auto [gn, v] = heap.back();
      heap.pop_back();
      if (locked[v] || gn != gain[v]) continue;  // stale
      if (wgt[1 - side[v]] + g.vwgt[v] > max_side_wgt) {
        deferred.emplace_back(gn, v);  // balance-blocked now, maybe not later
        continue;
      }
      pick = v;
      pick_gain = gn;
      break;
    }
    for (auto& d : deferred) {
      heap.push_back(d);
      std::push_heap(heap.begin(), heap.end());
    }
    if (pick == static_cast<Vertex>(-1)) break;
    // Move it.
    std::uint8_t from = side[pick];
    wgt[from] -= g.vwgt[pick];
    wgt[1 - from] += g.vwgt[pick];
    side[pick] = static_cast<std::uint8_t>(1 - from);
    locked[pick] = 1;
    cum += pick_gain;
    moves.push_back(pick);
    if (cum > best_cum) {
      best_cum = cum;
      best_prefix = moves.size();
    }
    // Update neighbor gains.
    gain[pick] = -gain[pick];
    for (std::uint32_t e = g.offsets[pick]; e < g.offsets[pick + 1]; ++e) {
      Vertex v = g.adj[e];
      // v's gain changes by ±2w depending on whether pick now matches v.
      if (side[v] == side[pick])
        gain[v] -= 2 * static_cast<std::int64_t>(g.ewgt[e]);
      else
        gain[v] += 2 * static_cast<std::int64_t>(g.ewgt[e]);
      if (!locked[v]) {
        heap.emplace_back(gain[v], v);
        std::push_heap(heap.begin(), heap.end());
      }
    }
  }

  // Roll back moves past the best prefix.
  for (std::size_t i = moves.size(); i-- > best_prefix;)
    side[moves[i]] = static_cast<std::uint8_t>(1 - side[moves[i]]);
  return best_cum > 0;
}

void refine(const WGraph& g, std::vector<std::uint8_t>& side, int max_passes) {
  const std::uint64_t total = g.total_vwgt();
  std::uint32_t max_v = *std::max_element(g.vwgt.begin(), g.vwgt.end());
  const std::uint64_t max_side = (total + 1) / 2 + max_v;
  for (int p = 0; p < max_passes; ++p)
    if (!fm_pass(g, side, max_side)) break;
}

// Final strict rebalance on the original (unit-weight) graph: move minimum
// cut-damage vertices until sides differ by at most one vertex.
void strict_balance(const WGraph& g, std::vector<std::uint8_t>& side) {
  const Vertex n = g.n();
  std::int64_t diff = 0;
  for (Vertex v = 0; v < n; ++v) diff += side[v] ? -1 : 1;
  while (std::abs(diff) > 1) {
    std::uint8_t from = diff > 0 ? 0 : 1;
    Vertex pick = static_cast<Vertex>(-1);
    std::int64_t best_gain = std::numeric_limits<std::int64_t>::min();
    for (Vertex v = 0; v < n; ++v) {
      if (side[v] != from) continue;
      std::int64_t gn = 0;
      for (std::uint32_t e = g.offsets[v]; e < g.offsets[v + 1]; ++e)
        gn += (side[g.adj[e]] != from) ? g.ewgt[e] : -static_cast<std::int64_t>(g.ewgt[e]);
      if (gn > best_gain) {
        best_gain = gn;
        pick = v;
      }
    }
    side[pick] = static_cast<std::uint8_t>(1 - from);
    diff += from == 0 ? -2 : 2;
  }
}

// Connected components of a WGraph (BFS); each component's vertex list is
// in ascending order, components ordered by their smallest vertex.
std::vector<std::vector<Vertex>> components_of(const WGraph& g) {
  const Vertex n = g.n();
  std::vector<std::vector<Vertex>> comps;
  std::vector<std::uint8_t> seen(n, 0);
  std::vector<Vertex> queue;
  for (Vertex s = 0; s < n; ++s) {
    if (seen[s]) continue;
    queue.clear();
    queue.push_back(s);
    seen[s] = 1;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const Vertex u = queue[head];
      for (std::uint32_t e = g.offsets[u]; e < g.offsets[u + 1]; ++e) {
        const Vertex v = g.adj[e];
        if (!seen[v]) {
          seen[v] = 1;
          queue.push_back(v);
        }
      }
    }
    std::sort(queue.begin(), queue.end());
    comps.push_back(queue);
  }
  return comps;
}

// Disconnected graphs: assign whole components first (largest to the
// currently lighter side), then refine and strictly rebalance.  The BFS
// region grower used to exhaust a small component and top the side up in
// raw index order, over-assigning one side with arbitrary vertices of the
// remaining components before balancing could repair it; packing intact
// components keeps every zero-cut split at zero cut.
std::vector<std::uint8_t> components_first_run(
    const WGraph& g, const std::vector<std::vector<Vertex>>& comps,
    const BisectionOptions& opts) {
  std::vector<std::size_t> order(comps.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return comps[a].size() > comps[b].size();
  });
  std::vector<std::uint8_t> side(g.n(), 0);
  std::uint64_t wgt[2] = {0, 0};
  for (std::size_t c : order) {
    const std::uint8_t s = wgt[1] < wgt[0] ? 1 : 0;
    for (Vertex v : comps[c]) {
      side[v] = s;
      wgt[s] += g.vwgt[v];
    }
  }
  refine(g, side, opts.fm_passes);
  strict_balance(g, side);
  refine(g, side, 2);
  strict_balance(g, side);
  return side;
}

std::vector<std::uint8_t> multilevel_run(const WGraph& g0, const BisectionOptions& opts,
                                         Rng& rng) {
  // Coarsen.
  std::vector<WGraph> levels;
  std::vector<std::vector<Vertex>> maps;
  levels.push_back(g0);
  while (levels.back().n() > opts.coarsen_to) {
    CoarseLevel cl = coarsen(levels.back(), rng);
    if (cl.graph.n() >= levels.back().n() * 95 / 100) break;  // stalled
    maps.push_back(std::move(cl.map));
    levels.push_back(std::move(cl.graph));
  }

  // Initial partition on the coarsest level: several grows, keep best.
  const WGraph& coarsest = levels.back();
  std::vector<std::uint8_t> side;
  std::uint64_t best_cut = std::numeric_limits<std::uint64_t>::max();
  for (int t = 0; t < 4; ++t) {
    auto cand = grow_partition(coarsest, rng);
    refine(coarsest, cand, opts.fm_passes);
    std::uint64_t c = cut_of(coarsest, cand);
    if (c < best_cut) {
      best_cut = c;
      side = std::move(cand);
    }
  }

  // Uncoarsen + refine.
  for (std::size_t lvl = levels.size() - 1; lvl-- > 0;) {
    std::vector<std::uint8_t> fine(levels[lvl].n());
    for (Vertex v = 0; v < levels[lvl].n(); ++v) fine[v] = side[maps[lvl][v]];
    side = std::move(fine);
    refine(levels[lvl], side, opts.fm_passes);
  }
  strict_balance(levels[0], side);
  refine(levels[0], side, 2);      // FM with slack may re-skew slightly...
  strict_balance(levels[0], side);  // ...so force exact balance last.
  return side;
}

}  // namespace

BisectionResult bisect(const Graph& g, const BisectionOptions& opts) {
  WGraph w = to_wgraph(g);
  BisectionResult best;
  best.cut_edges = std::numeric_limits<std::uint64_t>::max();
  if (const auto comps = components_of(w); comps.size() > 1) {
    // Deterministic components-first assignment; restarts add nothing
    // because no randomized region growing is involved.
    best.side = components_first_run(w, comps, opts);
    best.cut_edges = cut_of(w, best.side);
  } else {
    for (int r = 0; r < opts.restarts; ++r) {
      Rng rng(split_seed(opts.seed, static_cast<std::uint64_t>(r)));
      auto side = multilevel_run(w, opts, rng);
      std::uint64_t cut = cut_of(w, side);
      if (cut < best.cut_edges) {
        best.cut_edges = cut;
        best.side = std::move(side);
      }
    }
  }
  best.part_sizes[0] = best.part_sizes[1] = 0;
  for (std::uint8_t s : best.side) ++best.part_sizes[s];
  return best;
}

std::uint64_t bisection_bandwidth(const Graph& g, const BisectionOptions& opts) {
  return bisect(g, opts).cut_edges;
}

double normalized_cut(const Graph& g, std::uint64_t cut) {
  std::uint32_t k = 0;
  if (!g.is_regular(&k) || k == 0) {
    // Fall back to average degree for non-regular graphs.
    k = static_cast<std::uint32_t>(2 * g.num_edges() / std::max<Vertex>(g.num_vertices(), 1));
  }
  double denom = static_cast<double>(g.num_vertices()) * k / 2.0;
  return static_cast<double>(cut) / denom;
}

double normalized_bisection_bandwidth(const Graph& g, const BisectionOptions& opts) {
  return normalized_cut(g, bisection_bandwidth(g, opts));
}

}  // namespace sfly
