#pragma once
// Latency / completion statistics collected by the simulator.

#include <cstdint>
#include <vector>

namespace sfly::sim {

class LatencyStats {
 public:
  void record(double latency_ns);

  /// Pre-size the sample store so `record` stays allocation-free for the
  /// next `n` samples (the simulator reserves its scheduled message count
  /// when run() starts).
  void reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? sum_ / count_ : 0.0; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  /// p clamps into [0,1] (NaN reads as 0); sorts an internal copy on
  /// demand.
  [[nodiscard]] double percentile(double p) const;

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
  double min_ = 0.0;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  friend class Simulator;
};

}  // namespace sfly::sim
