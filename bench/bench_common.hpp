#pragma once
// Shared helpers for the per-figure/per-table benchmark harnesses: a tiny
// flag parser (--full, --seed N, ...) and the simulation-campaign runner
// used by the Section VI benches.
//
// Every bench defaults to a reduced-scale preset that reproduces the
// paper's qualitative shape in minutes; pass --full for the exact paper
// configuration.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/spectralfly_net.hpp"
#include "sim/traffic.hpp"
#include "topo/bundlefly.hpp"
#include "topo/dragonfly.hpp"
#include "topo/factory.hpp"
#include "topo/lps.hpp"
#include "topo/slimfly.hpp"
#include "util/table.hpp"

namespace sfly::bench {

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }
  [[nodiscard]] bool has(const std::string& name) const {
    for (const auto& a : args_)
      if (a == name) return true;
    return false;
  }
  [[nodiscard]] std::uint64_t get(const std::string& name, std::uint64_t dflt) const {
    for (std::size_t i = 0; i + 1 < args_.size(); ++i)
      if (args_[i] == name) {
        // stoull silently wraps negatives ("-1" -> 2^64-1), so insist on a
        // leading digit before parsing.
        const std::string& v = args_[i + 1];
        if (!v.empty() && v[0] >= '0' && v[0] <= '9') {
          try {
            return std::stoull(v);
          } catch (const std::exception&) {
            // fall through to the shared error path
          }
        }
        std::fprintf(stderr, "error: %s expects a non-negative number, got '%s'\n",
                     name.c_str(), v.c_str());
        std::exit(2);
      }
    return dflt;
  }
  [[nodiscard]] bool full() const { return has("--full"); }

  /// Worker threads for engine-backed benches (0 = all hardware threads).
  [[nodiscard]] unsigned threads() const {
    return static_cast<unsigned>(get("--threads", 0));
  }

  static void usage(const char* what, const char* extra = "") {
    std::printf("# %s\n#   --full   run the exact paper-scale configuration\n%s\n",
                what, extra);
  }

 private:
  std::vector<std::string> args_;
};

// ---------------------------------------------------------------------
// The four simulation-scale topologies of Section VI-B.

struct SimTopo {
  std::string name;
  Graph graph;
  std::uint32_t concentration = 8;
};

inline std::vector<SimTopo> simulation_topologies(bool full) {
  std::vector<SimTopo> out;
  if (full) {
    // Paper configuration: ~8.7k endpoints, 32-port routers.
    out.push_back({"SpectralFly", topo::lps_graph({23, 13}), 8});       // 1092 r
    out.push_back({"DragonFly", topo::dragonfly_graph({16, 8, 69}), 8}); // 1104 r
    out.push_back({"SlimFly", topo::slimfly_graph({27}), 8});            // 1458 r
    out.push_back({"BundleFly",
                   topo::bundlefly_graph({9, 9, topo::BundleShift::kAffine}), 6});
  } else {
    // Reduced preset (~1.3k endpoints) with the same relative shapes.
    out.push_back({"SpectralFly", topo::lps_graph({11, 7}), 8});         // 168 r
    out.push_back({"DragonFly", topo::dragonfly_graph({8, 4, 21}), 8});  // 168 r
    out.push_back({"SlimFly", topo::slimfly_graph({9}), 8});             // 162 r
    out.push_back({"BundleFly",
                   topo::bundlefly_graph({13, 3, topo::BundleShift::kOptimized}), 6});
  }
  return out;
}

// One synthetic-pattern run; returns the paper's metric (max message time).
inline double run_pattern(const SimTopo& t, routing::Algo algo, sim::Pattern pattern,
                          double load, std::uint32_t nranks,
                          std::uint32_t messages_per_rank, std::uint64_t seed) {
  core::NetworkOptions opts;
  opts.concentration = t.concentration;
  opts.routing = algo;
  auto net = core::Network::from_graph(t.name, t.graph, opts);
  auto sim = net.make_simulator(seed);
  sim::SyntheticLoad sl;
  sl.pattern = pattern;
  sl.nranks = nranks;
  sl.messages_per_rank = messages_per_rank;
  sl.offered_load = load;
  sl.seed = seed;
  return run_synthetic(*sim, sl).max_latency_ns;
}

inline const double kLoads[] = {0.1, 0.2, 0.3, 0.5, 0.6, 0.7};

}  // namespace sfly::bench
