// Fig. 5 — structural properties under random link failures: diameter,
// mean hop count, and bisection bandwidth vs the fraction of deleted
// edges, for comparable ~600-router (and, with --full, ~5-7K-router)
// instances of the four families.
//
// Engine-backed with wave-based adaptive scheduling: trials are submitted
// in waves of growing size (10, then up to 100, up to 1000, ...), every
// (point, trial) of a wave fanned concurrently across the task pool, and
// the paper's batch/CoV stopping rule (footnote 1) applied between waves:
// a point stops contributing trials as soon as some prefix of 10-trial
// batches has batch-mean CoV < 10%, so converged points recover the seed
// version's early-stop economy while unconverged points keep the engine's
// parallelism (crucial at --full scale, 100+ trials/point).  Trial seeds
// depend only on the trial number, never on the wave split, so the output
// is bitwise-identical at any --threads and to the precompute-everything
// schedule.

#include "bench_common.hpp"

#include <algorithm>
#include <cmath>

#include "engine/engine.hpp"
#include "util/rng.hpp"

using namespace sfly;

namespace {

struct Subject {
  std::string name;
  std::function<Graph()> build;
};

// Prefix selected by the CoV rule over per-trial metric values (NaN-free):
// batches of size ceil(len/10); converged when the CoV of the 10 batch
// means drops below `cov_target`.  `converged` distinguishes the rule
// firing (stop scheduling trials for this point) from running out of
// values (the fall-through keeps everything) — the wave scheduler needs
// that distinction even when both return use == vals.size().
struct CovPrefix {
  std::size_t use = 0;
  bool converged = false;
};

CovPrefix cov_prefix(const std::vector<double>& vals, double cov_target) {
  for (std::size_t x = 1; 10 * x <= vals.size(); x *= 10) {
    const std::size_t use = 10 * x;
    double means[10];
    for (std::size_t b = 0; b < 10; ++b) {
      double s = 0;
      for (std::size_t i = 0; i < x; ++i) s += vals[b * x + i];
      means[b] = s / static_cast<double>(x);
    }
    double m = 0;
    for (double v : means) m += v;
    m /= 10.0;
    double var = 0;
    for (double v : means) var += (v - m) * (v - m);
    double cov = m != 0.0 ? std::sqrt(var / 10.0) / std::fabs(m) : 0.0;
    if (cov < cov_target) return {use, true};
  }
  return {vals.size(), false};
}

// One sweep point's accumulated trial state across waves.
struct Point {
  std::string topology;
  double fraction = 0.0;
  std::size_t scheduled = 0;   // trials submitted so far
  bool converged = false;      // CoV rule satisfied (or point exhausted)
  std::vector<engine::Result> kept;  // ok && connected trials, trial order
  std::vector<double> hop_vals;      // convergence tracked on mean distance
};

engine::Scenario trial_scenario(const Point& p, std::uint64_t trial) {
  // Trial seeds are derived from the same (9177, trial) base as the
  // pre-engine bench, but the engine re-splits per component (failure
  // sampling, bisection), so per-trial numbers differ from the old
  // output; only the statistics are comparable.
  engine::Scenario sc;
  sc.topology = p.topology;
  sc.kind = engine::Kind::kStructure;
  sc.failure_fraction = p.fraction;
  sc.bisection_restarts = 2;
  sc.seed = split_seed(9177, trial);
  return sc;
}

void sweep(engine::Engine& eng, const std::vector<Subject>& subjects,
           const std::vector<double>& fractions, std::uint64_t max_trials) {
  for (const auto& s : subjects) eng.register_topology(s.name, s.build);

  std::vector<Point> points;
  for (const auto& s : subjects)
    for (double f : fractions) points.push_back({s.name, f});

  // Waves: every unconverged point contributes its next block of trials
  // (up to the next CoV checkpoint — 10, 100, 1000, ... — capped at
  // --trials), the whole wave runs as one parallel batch, and the CoV
  // rule retires points between waves.  Pristine points (fraction 0) are
  // deterministic and always retire after their single trial.
  while (true) {
    std::vector<engine::Scenario> batch;
    std::vector<std::pair<std::size_t, std::size_t>> slots;  // (point, trial)
    for (std::size_t pi = 0; pi < points.size(); ++pi) {
      Point& p = points[pi];
      if (p.converged) continue;
      const std::size_t cap = p.fraction == 0.0 ? 1 : max_trials;
      std::size_t target = p.fraction == 0.0 ? 1 : 10;
      while (target <= p.scheduled) target *= 10;
      target = std::min(target, cap);
      for (std::size_t t = p.scheduled; t < target; ++t) {
        batch.push_back(trial_scenario(p, t));
        slots.emplace_back(pi, t);
      }
      p.scheduled = target;
    }
    if (batch.empty()) break;

    auto results = eng.run(batch);
    for (std::size_t i = 0; i < results.size(); ++i) {
      Point& p = points[slots[i].first];
      const auto& r = results[i];
      if (r.ok && r.connected) {
        p.kept.push_back(r);
        p.hop_vals.push_back(r.mean_hops);
      }
    }
    for (Point& p : points) {
      if (p.converged) continue;
      const std::size_t cap = p.fraction == 0.0 ? 1 : max_trials;
      if (cov_prefix(p.hop_vals, 0.10).converged) p.converged = true;
      if (p.scheduled >= cap) p.converged = true;  // exhausted the budget
    }
  }

  Table t({"Topology", "Fail frac", "Diameter", "Mean hops", "Bisection BW",
           "Trials"});
  std::size_t at = 0;
  for (const auto& s : subjects) {
    for (double f : fractions) {
      const Point& p = points[at++];
      const std::size_t use = cov_prefix(p.hop_vals, 0.10).use;
      if (use == 0) {
        t.add_row({s.name, Table::num(f, 2), "disconnected", "-", "-",
                   std::to_string(p.scheduled)});
        continue;
      }
      double diameter_sum = 0, hops_sum = 0, cut_sum = 0;
      for (std::size_t i = 0; i < use; ++i) {
        diameter_sum += p.kept[i].diameter;
        hops_sum += p.kept[i].mean_hops;
        cut_sum += p.kept[i].bisection;
      }
      t.add_row({s.name, Table::num(f, 2),
                 Table::num(diameter_sum / static_cast<double>(use), 2),
                 Table::num(hops_sum / static_cast<double>(use), 2),
                 Table::num(cut_sum / static_cast<double>(use), 0),
                 std::to_string(use)});
    }
    t.add_row({"---"});
  }
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  bench::Flags::usage(
      "Fig. 5: diameter / mean hops / bisection under random edge failures",
      "#   --trials N   trials per point (default 10)\n"
      "#   --threads N  engine worker threads (default: all hardware threads)\n"
      "#   --full       also run the ~5-7K-router class with more trials");
  const std::uint64_t max_trials =
      std::max<std::uint64_t>(1, flags.get("--trials", flags.full() ? 100 : 10));

  engine::EngineConfig cfg;
  cfg.threads = flags.threads();
  engine::Engine eng(cfg);

  std::printf("== ~600-router class ==\n");
  std::vector<Subject> small;
  small.push_back({"LPS(23,11)", [] { return topo::lps_graph({23, 11}); }});
  small.push_back({"SlimFly(17)", [] { return topo::slimfly_graph({17}); }});
  small.push_back({"BundleFly(37,3)", [] {
                     return topo::bundlefly_graph(
                         {37, 3, topo::BundleShift::kAffine});
                   }});
  small.push_back({"DragonFly(24)", [] {
                     return topo::dragonfly_graph(
                         topo::DragonFlyParams::canonical(24));
                   }});
  sweep(eng, small, {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}, max_trials);
  std::printf(
      "\n# Paper shape: SlimFly's diameter-2 is fragile (jumps to 4 at 10%%\n"
      "# failures, briefly worse than LPS); SlimFly keeps the lowest mean\n"
      "# hops, LPS keeps the highest bisection; BF/DF degrade faster.\n");

  if (flags.full()) {
    std::printf("\n== ~5-7K-router class ==\n");
    std::vector<Subject> large;
    large.push_back({"LPS(71,17)", [] { return topo::lps_graph({71, 17}); }});
    large.push_back({"SlimFly(47)", [] { return topo::slimfly_graph({47}); }});
    large.push_back({"BundleFly(137,4)", [] {
                       return topo::bundlefly_graph(
                           {137, 4, topo::BundleShift::kAffine});
                     }});
    large.push_back({"DragonFly(69)", [] {
                       return topo::dragonfly_graph(
                           topo::DragonFlyParams::canonical(69));
                     }});
    sweep(eng, large, {0.0, 0.2, 0.4, 0.6, 0.8}, max_trials);
  }
  return 0;
}
