#pragma once
// Recursive bisection into a leaf-cell partition — the partitioner half of
// the hierarchical routing artifact (routing::CellIndex), modeled on
// OSRM's include/partition/recursive_bisection.hpp.
//
// The graph is split with the multilevel bisector (partition/bisection.hpp)
// until every piece fits max_cell_size, and the leaves become cells.  On
// expanders (the SpectralFly regime) no small cuts exist, so cells are
// near-arbitrary balanced vertex sets whose induced subgraphs may even be
// internally disconnected — CellIndex's correctness does not depend on cut
// quality, only on the partition being a partition, so the per-split
// bisection runs with few restarts/passes by default.
//
// Deterministic for a (graph, options) pair: splits are seeded by
// split_seed(seed, node-id) in a fixed pre-order walk, side 0 first, and
// cell ids are assigned in leaf-emission order.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "partition/bisection.hpp"

namespace sfly::partition {

struct CellPartitionOptions {
  Vertex max_cell_size = 64;   // leaf emission threshold (>= 1)
  std::uint64_t seed = 1;
  int restarts = 2;            // per-split bisection restarts
  int fm_passes = 4;           // per-split FM refinement passes
};

struct CellPartition {
  std::uint32_t num_cells = 0;
  std::vector<std::uint32_t> cell_of;       // vertex -> cell id
  std::vector<std::uint32_t> cell_offsets;  // num_cells + 1 (CSR over members)
  std::vector<Vertex> members;              // size n, ascending within a cell

  [[nodiscard]] std::uint32_t cell_size(std::uint32_t c) const {
    return cell_offsets[c + 1] - cell_offsets[c];
  }
};

/// Partition `g` into cells of at most `max_cell_size` vertices by
/// recursive balanced bisection.  Works on any graph (connected or not);
/// throws std::invalid_argument only when max_cell_size is 0.
[[nodiscard]] CellPartition recursive_bisection(
    const Graph& g, const CellPartitionOptions& opts = {});

}  // namespace sfly::partition
