#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/spectralfly_net.hpp"
#include "sim/motifs.hpp"
#include "sim/traffic.hpp"
#include "topo/dragonfly.hpp"
#include "topo/lps.hpp"
#include "topo/paley.hpp"

namespace sfly::sim {
namespace {

Graph pair_graph() { return Graph::from_edges(2, {{0, 1}}); }

Graph cycle_graph(Vertex n) {
  std::vector<std::pair<Vertex, Vertex>> e;
  for (Vertex i = 0; i < n; ++i) e.emplace_back(i, (i + 1) % n);
  return Graph::from_edges(n, std::move(e));
}

SimConfig small_cfg() {
  SimConfig cfg;
  cfg.concentration = 1;
  cfg.vcs = 4;
  cfg.packet_bytes = 4096;
  return cfg;
}

TEST(Simulator, SingleMessageLatencyAnalytic) {
  auto g = pair_graph();
  auto t = routing::Tables::build(g);
  auto cfg = small_cfg();
  Simulator sim(g, t, cfg);
  sim.send(0, 1, 4096, 0.0);
  EXPECT_TRUE(sim.run());
  // inject-ser + (link+router) + hop-ser + (link+router) + eject-ser + nic.
  double ser = 4096 / cfg.bandwidth_bytes_per_ns;
  double expect = 3 * ser + 2 * (cfg.link_latency_ns + cfg.router_latency_ns) +
                  cfg.nic_latency_ns;
  EXPECT_NEAR(sim.message_latency().max(), expect, 1e-6);
  EXPECT_EQ(sim.message_latency().count(), 1u);
}

TEST(Simulator, IntraRouterMessage) {
  auto g = pair_graph();
  auto t = routing::Tables::build(g);
  auto cfg = small_cfg();
  cfg.concentration = 2;  // endpoints 0,1 on router 0
  Simulator sim(g, t, cfg);
  sim.send(0, 1, 4096, 0.0);
  EXPECT_TRUE(sim.run());
  double ser = 4096 / cfg.bandwidth_bytes_per_ns;
  double expect = 2 * ser + cfg.link_latency_ns + cfg.router_latency_ns +
                  cfg.nic_latency_ns;
  EXPECT_NEAR(sim.message_latency().max(), expect, 1e-6);
}

TEST(Simulator, MessageSegmentation) {
  auto g = pair_graph();
  auto t = routing::Tables::build(g);
  auto cfg = small_cfg();
  cfg.packet_bytes = 1024;
  Simulator sim(g, t, cfg);
  sim.send(0, 1, 4096, 0.0);  // four packets
  EXPECT_TRUE(sim.run());
  EXPECT_EQ(sim.message_latency().count(), 1u);  // one message delivered
  EXPECT_GE(sim.packets_forwarded(), 4u * 3u);   // 4 packets x 3 ports
  // Pipelining: faster than 4 store-and-forward full-message hops.
  double ser_full = 4096 / cfg.bandwidth_bytes_per_ns;
  EXPECT_LT(sim.message_latency().max(),
            3 * ser_full + 2 * (cfg.link_latency_ns + cfg.router_latency_ns) +
                cfg.nic_latency_ns);
}

TEST(Simulator, FifoSerializationUnderContention) {
  // Two sources send to the same destination endpoint: the ejection link
  // serializes; completion reflects the bottleneck.
  auto g = cycle_graph(4);
  auto t = routing::Tables::build(g);
  auto cfg = small_cfg();
  Simulator sim(g, t, cfg);
  const int kMsgs = 16;
  for (int i = 0; i < kMsgs; ++i) {
    sim.send(1, 0, 4096, 0.0);
    sim.send(3, 0, 4096, 0.0);
  }
  EXPECT_TRUE(sim.run());
  double ser = 4096 / cfg.bandwidth_bytes_per_ns;
  // 32 messages through one ejection port: at least 32 serializations.
  EXPECT_GE(sim.completion_time(), 2 * kMsgs * ser);
}

TEST(Simulator, BackpressureDoesNotDeadlock) {
  auto g = cycle_graph(8);
  auto t = routing::Tables::build(g);
  auto cfg = small_cfg();
  cfg.vc_buffer_bytes = 4096;  // single packet per VC buffer
  cfg.vcs = static_cast<std::uint32_t>(t.diameter()) + 1;
  Simulator sim(g, t, cfg);
  for (EndpointId e = 0; e < 8; ++e)
    for (int m = 0; m < 20; ++m)
      sim.send(e, (e + 4) % 8, 4096, 0.0);  // worst-case distance
  EXPECT_TRUE(sim.run()) << "credit-based sim must drain with hop-indexed VCs";
  EXPECT_EQ(sim.message_latency().count(), 160u);
}

TEST(Simulator, DeterministicAcrossRuns) {
  auto g = cycle_graph(6);
  auto t = routing::Tables::build(g);
  auto run_once = [&] {
    auto cfg = small_cfg();
    cfg.algo = routing::Algo::kUgalL;
    cfg.vcs = 2 * t.diameter() + 1;
    Simulator sim(g, t, cfg);
    for (EndpointId e = 0; e < 6; ++e)
      for (int m = 0; m < 10; ++m) sim.send(e, (e + 3) % 6, 2048, 100.0 * m);
    EXPECT_TRUE(sim.run());
    return sim.completion_time();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(Simulator, ValiantLongerThanMinimalAtLowLoad) {
  auto g = topo::lps_graph({3, 5});
  auto t = routing::Tables::build(g);
  auto run_algo = [&](routing::Algo a) {
    auto cfg = small_cfg();
    cfg.algo = a;
    cfg.vcs = routing::required_vcs(a, t.diameter());
    Simulator sim(g, t, cfg);
    for (EndpointId e = 0; e < sim.num_endpoints(); e += 7)
      sim.send(e, (e + 41) % sim.num_endpoints(), 2048, e * 500.0);
    EXPECT_TRUE(sim.run());
    return sim.message_latency().mean();
  };
  EXPECT_GT(run_algo(routing::Algo::kValiant), run_algo(routing::Algo::kMinimal));
}

TEST(Traffic, PatternDestinations) {
  // 8 ranks, 3 bits.
  EXPECT_EQ(pattern_destination(Pattern::kShuffle, 0b011, 3, 0), 0b110u);
  EXPECT_EQ(pattern_destination(Pattern::kShuffle, 0b100, 3, 0), 0b001u);
  EXPECT_EQ(pattern_destination(Pattern::kBitReverse, 0b100, 3, 0), 0b001u);
  EXPECT_EQ(pattern_destination(Pattern::kBitReverse, 0b110, 3, 0), 0b011u);
  // 4 bits transpose: swap halves.
  EXPECT_EQ(pattern_destination(Pattern::kTranspose, 0b0111, 4, 0), 0b1101u);
  EXPECT_EQ(pattern_destination(Pattern::kTranspose, 0b0010, 4, 0), 0b1000u);
  // Random stays in range.
  for (std::uint64_t e = 0; e < 100; ++e)
    EXPECT_LT(pattern_destination(Pattern::kRandom, 5, 4, e * 2654435761ull), 16u);
}

TEST(Traffic, TransposeIsInvolution) {
  for (std::uint32_t r = 0; r < 64; ++r) {
    auto d = pattern_destination(Pattern::kTranspose, r, 6, 0);
    EXPECT_EQ(pattern_destination(Pattern::kTranspose, d, 6, 0), r);
  }
}

TEST(Traffic, PlaceRanksSortedUnique) {
  auto placement = place_ranks(16, 100, 7);
  EXPECT_EQ(placement.size(), 16u);
  for (std::size_t i = 1; i < placement.size(); ++i)
    EXPECT_LT(placement[i - 1], placement[i]);
  EXPECT_LT(placement.back(), 100u);
  EXPECT_THROW(place_ranks(101, 100, 7), std::invalid_argument);
}

TEST(Traffic, SyntheticRunDeliversAll) {
  auto g = topo::lps_graph({3, 5});  // 120 routers
  auto t = routing::Tables::build(g);
  SimConfig cfg;
  cfg.concentration = 2;
  cfg.algo = routing::Algo::kMinimal;
  cfg.vcs = routing::required_vcs(cfg.algo, t.diameter());
  Simulator sim(g, t, cfg);
  SyntheticLoad load;
  load.pattern = Pattern::kShuffle;
  load.nranks = 128;
  load.messages_per_rank = 8;
  load.offered_load = 0.3;
  auto res = run_synthetic(sim, load);
  EXPECT_EQ(res.messages, 128u * 8u);
  EXPECT_GT(res.max_latency_ns, 0.0);
  EXPECT_GE(res.max_latency_ns, res.mean_latency_ns);
}

// --------------------------------------------------------------------------
// Golden-value regression pins for the benches' simulation metric.
//
// This replicates bench::run_pattern exactly — Network::from_graph (which
// builds its own tables and applies the paper's VC sizing), seed-42
// simulator, run_synthetic — and pins the resulting max message time on
// two small topologies x two patterns.  The engine-backed bench ports run
// the same workloads through cached shared tables; if either path's
// simulated results ever drift, these pins fail before a bench silently
// reports different figures.  Values recorded from the seed simulator.

double run_pattern_equivalent(const char* name, Graph g, std::uint32_t conc,
                              routing::Algo algo, Pattern pattern, double load,
                              std::uint32_t nranks, std::uint32_t msgs) {
  core::NetworkOptions opts;
  opts.concentration = conc;
  opts.routing = algo;
  auto net = core::Network::from_graph(name, std::move(g), opts);
  auto sim = net.make_simulator(42);
  SyntheticLoad sl;
  sl.pattern = pattern;
  sl.nranks = nranks;
  sl.messages_per_rank = msgs;
  sl.offered_load = load;
  sl.seed = 42;
  return run_synthetic(*sim, sl).max_latency_ns;
}

TEST(SimGolden, PaleyMaxMessageTimePinned) {
  auto g = topo::paley_graph({13});  // 13 routers x conc 4 = 52 endpoints
  EXPECT_NEAR(run_pattern_equivalent("Paley(13)", g, 4, routing::Algo::kMinimal,
                                     Pattern::kShuffle, 0.5, 32, 8),
              3929.7733981270621, 3929.77 * 1e-9);
  EXPECT_NEAR(run_pattern_equivalent("Paley(13)", g, 4, routing::Algo::kUgalL,
                                     Pattern::kTranspose, 0.5, 32, 8),
              3785.4239735150213, 3785.42 * 1e-9);
}

TEST(SimGolden, DragonFlyMaxMessageTimePinned) {
  auto g = topo::dragonfly_graph(topo::DragonFlyParams::canonical(12));
  EXPECT_NEAR(run_pattern_equivalent("DF(12)", g, 2, routing::Algo::kMinimal,
                                     Pattern::kShuffle, 0.5, 64, 8),
              8265.3928844097973, 8265.39 * 1e-9);
  EXPECT_NEAR(run_pattern_equivalent("DF(12)", g, 2, routing::Algo::kUgalL,
                                     Pattern::kTranspose, 0.5, 64, 8),
              4712.5834611663977, 4712.58 * 1e-9);
}

// UGAL-G and adaptive-min exercise the remaining routing decision paths
// (two-hop-ahead queue probes; per-hop min-queue choice over the minimal
// next-hop set).  Values recorded from the pre-index scan-based simulator
// — the NextHopIndex path must reproduce them bitwise.

TEST(SimGolden, PaleyUgalGAndAdaptiveMinPinned) {
  auto g = topo::paley_graph({13});
  EXPECT_NEAR(run_pattern_equivalent("Paley(13)", g, 4, routing::Algo::kUgalG,
                                     Pattern::kShuffle, 0.5, 32, 8),
              3728.7649042013509, 3728.76 * 1e-9);
  EXPECT_NEAR(run_pattern_equivalent("Paley(13)", g, 4,
                                     routing::Algo::kAdaptiveMin,
                                     Pattern::kTranspose, 0.5, 32, 8),
              2829.1726543589966, 2829.17 * 1e-9);
}

TEST(SimGolden, DragonFlyUgalGAndAdaptiveMinPinned) {
  auto g = topo::dragonfly_graph(topo::DragonFlyParams::canonical(12));
  EXPECT_NEAR(run_pattern_equivalent("DF(12)", g, 2, routing::Algo::kUgalG,
                                     Pattern::kShuffle, 0.5, 64, 8),
              4915.1605038587586, 4915.16 * 1e-9);
  EXPECT_NEAR(run_pattern_equivalent("DF(12)", g, 2,
                                     routing::Algo::kAdaptiveMin,
                                     Pattern::kTranspose, 0.5, 64, 8),
              4712.5834611663977, 4712.58 * 1e-9);
}

// --------------------------------------------------------------------------
// LatencyStats hardening: out-of-range percentiles clamp instead of
// indexing out of bounds (negative idx used to cast to a huge size_t).

TEST(LatencyStats, PercentileClampsOutOfRange) {
  LatencyStats s;
  for (double v : {5.0, 1.0, 3.0}) s.record(v);
  EXPECT_DOUBLE_EQ(s.percentile(-0.5), 1.0);  // below range -> min sample
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(7.0), 5.0);   // above range -> max sample
  EXPECT_DOUBLE_EQ(s.percentile(std::nan("")), 1.0);  // NaN reads as 0
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 3.0);   // interior is unchanged
  LatencyStats empty;
  EXPECT_DOUBLE_EQ(empty.percentile(2.0), 0.0);
}

// --------------------------------------------------------------------------
// Dynamic fault injection (DESIGN.md §7): mid-run link/router churn with
// reroute-in-flight, drop accounting, and credit reconciliation.

TEST(Churn, LinkDownReroutesWithoutLoss) {
  // Continuous 0->3 stream on a 6-cycle (two minimal directions); sever
  // {1,2} mid-run and repair it later.  The live topology stays
  // connected, so every message still delivers — diverted, not dropped.
  auto g = cycle_graph(6);
  auto t = routing::Tables::build(g);
  Simulator sim(g, t, small_cfg());
  for (int m = 0; m < 40; ++m) sim.send(0, 3, 4096, 250.0 * m);
  sim.inject_failures({{2000.0, ChurnKind::kLinkDown, 1, 2},
                       {8000.0, ChurnKind::kLinkUp, 1, 2}});
  EXPECT_TRUE(sim.run());
  EXPECT_EQ(sim.messages_delivered(), 40u);
  EXPECT_EQ(sim.packets_dropped(), 0u);
  EXPECT_EQ(sim.messages_undeliverable(), 0u);
  EXPECT_GT(sim.packets_rerouted(), 0u);
  EXPECT_DOUBLE_EQ(sim.first_failure_ns(), 2000.0);
  // Post-churn restriction covers a subset of the samples.
  EXPECT_LE(sim.latency_since(2000.0).count(), sim.message_latency().count());
  EXPECT_GT(sim.latency_since(2000.0).count(), 0u);
}

TEST(Churn, ZeroSurvivingMinimalNextHopsStillDelivers) {
  // 5-cycle, message 0->2: the unique minimal route runs 0-1-2.  Severing
  // {1,2} before the packet reaches router 1 leaves its minimal next-hop
  // set empty there; the non-minimal fallback must walk it around
  // 1-0-4-3-2 (counted as reroutes) instead of dropping it.
  auto g = cycle_graph(5);
  auto t = routing::Tables::build(g);
  auto cfg = small_cfg();
  cfg.vcs = 8;
  Simulator sim(g, t, cfg);
  sim.send(0, 2, 4096, 0.0);
  sim.inject_failures({{100.0, ChurnKind::kLinkDown, 1, 2}});
  EXPECT_TRUE(sim.run());
  EXPECT_EQ(sim.messages_delivered(), 1u);
  EXPECT_EQ(sim.packets_dropped(), 0u);
  EXPECT_GT(sim.packets_rerouted(), 0u);
}

TEST(Churn, RouterDownDropsReconcilesAndRecovers) {
  // Two routers, one link.  Kill router 1 mid-stream: packets bound for
  // its endpoint become undeliverable at router 0 (counted drops, credit
  // handed back upstream), while messages sent after the repair must
  // deliver — proving the port re-armed and no credit/pool capacity
  // leaked on the drop path.
  auto g = pair_graph();
  auto t = routing::Tables::build(g);
  Simulator sim(g, t, small_cfg());
  const int kBefore = 8, kDuring = 8, kAfter = 32;
  for (int m = 0; m < kBefore; ++m) sim.send(0, 1, 4096, 10.0 * m);
  for (int m = 0; m < kDuring; ++m) sim.send(0, 1, 4096, 6000.0 + 10.0 * m);
  for (int m = 0; m < kAfter; ++m) sim.send(0, 1, 4096, 20000.0 + 10.0 * m);
  sim.inject_failures({{5000.0, ChurnKind::kRouterDown, 1, 0},
                       {12000.0, ChurnKind::kRouterUp, 1, 0}});
  EXPECT_TRUE(sim.run());
  EXPECT_EQ(sim.messages_undeliverable(), static_cast<std::uint64_t>(kDuring));
  EXPECT_EQ(sim.packets_dropped(), static_cast<std::uint64_t>(kDuring));
  EXPECT_EQ(sim.messages_delivered(),
            static_cast<std::uint64_t>(kBefore + kAfter));
  // Undeliverable messages record no latency sample.
  EXPECT_EQ(sim.message_latency().count(),
            static_cast<std::uint64_t>(kBefore + kAfter));
}

TEST(Churn, SeveredLinkProbesStillAnswer) {
  // Churn never mutates the Graph: a severed link keeps its ports, so
  // queue_probe on it stays legal (and reads an evacuated, empty queue);
  // only a pair that was never adjacent throws.
  auto g = cycle_graph(6);
  auto t = routing::Tables::build(g);
  Simulator sim(g, t, small_cfg());
  sim.inject_failures({{10.0, ChurnKind::kLinkDown, 1, 2}});
  for (int m = 0; m < 10; ++m) sim.send(0, 3, 4096, 5.0 * m);
  EXPECT_TRUE(sim.run());
  EXPECT_EQ(sim.queue_probe(1, 2), 0u);  // severed but adjacent: answers
  EXPECT_EQ(sim.queue_probe(2, 1), 0u);
  EXPECT_THROW((void)sim.queue_probe(0, 3), std::logic_error);  // non-edge
}

TEST(Churn, ScheduleValidation) {
  auto g = cycle_graph(4);
  auto t = routing::Tables::build(g);
  Simulator sim(g, t, small_cfg());
  EXPECT_THROW(sim.inject_failures({{-1.0, ChurnKind::kLinkDown, 0, 1}}),
               std::invalid_argument);
  EXPECT_THROW(sim.inject_failures({{0.0, ChurnKind::kLinkDown, 0, 9}}),
               std::out_of_range);
  EXPECT_THROW(sim.inject_failures({{0.0, ChurnKind::kRouterDown, 9, 0}}),
               std::out_of_range);
  EXPECT_THROW(sim.inject_failures({{0.0, ChurnKind::kLinkDown, 0, 2}}),
               std::invalid_argument);  // diagonal: not an edge
}

// Golden pins for a seed-derived churn scenario on a small topology: the
// exact delivered/reroute/drop counters, twice (bitwise run-to-run
// determinism).  Values recorded from the seed implementation.
TEST(ChurnGolden, PaleyCountersPinnedAndDeterministic) {
  constexpr std::uint64_t kChurnGoldenDelivered = 486;
  constexpr std::uint64_t kChurnGoldenReroutes = 6;
  constexpr std::uint64_t kChurnGoldenDrops = 26;
  auto g = topo::paley_graph({13});
  auto run_once = [&] {
    core::NetworkOptions opts;
    opts.concentration = 4;
    opts.routing = routing::Algo::kUgalL;
    auto net = core::Network::from_graph("Paley(13)", g, opts);
    auto sim = net.make_simulator(42);
    ChurnSpec spec;
    spec.link_kills = 3;
    spec.router_kills = 1;
    spec.start_ns = 500.0;
    spec.window_ns = 1500.0;
    spec.repair_ns = 2500.0;
    sim->inject_failures(make_failure_schedule(g, spec, 7));
    SyntheticLoad sl;
    sl.pattern = Pattern::kShuffle;
    sl.nranks = 32;
    sl.messages_per_rank = 16;
    sl.offered_load = 0.5;
    sl.seed = 42;
    (void)run_synthetic(*sim, sl);
    return std::tuple{sim->messages_delivered(), sim->packets_rerouted(),
                      sim->packets_dropped(), sim->messages_undeliverable(),
                      sim->completion_time()};
  };
  const auto a = run_once();
  EXPECT_EQ(a, run_once());  // bitwise determinism, including completion
  EXPECT_EQ(std::get<0>(a) + std::get<3>(a), 32u * 16u);  // full accounting
  // Golden counters (recorded values; any drift in the churn engine's
  // event interleaving, reroute picks or drop policy trips these).
  EXPECT_EQ(std::get<0>(a), kChurnGoldenDelivered);
  EXPECT_EQ(std::get<1>(a), kChurnGoldenReroutes);
  EXPECT_EQ(std::get<2>(a), kChurnGoldenDrops);
}

TEST(Motifs, HaloMessageCountAndCompletion) {
  auto g = cycle_graph(16);
  auto t = routing::Tables::build(g);
  SimConfig cfg;
  cfg.concentration = 2;
  cfg.vcs = routing::required_vcs(cfg.algo, t.diameter());
  Simulator sim(g, t, cfg);
  Halo3D26 halo(3, 3, 3, 2, 1024, 256, 64);
  auto res = run_motif(sim, halo, 3);
  EXPECT_EQ(res.messages, 27u * 26u * 2u);
  EXPECT_GT(res.completion_ns, 0.0);
}

TEST(Motifs, SweepMessageCount) {
  auto g = cycle_graph(16);
  auto t = routing::Tables::build(g);
  SimConfig cfg;
  cfg.concentration = 2;
  cfg.vcs = routing::required_vcs(cfg.algo, t.diameter());
  Simulator sim(g, t, cfg);
  Sweep3D sweep(4, 4, 4, 2048);
  auto res = run_motif(sim, sweep, 5);
  // Per sweep: (px-1)*py horizontal + px*(py-1) vertical messages.
  EXPECT_EQ(res.messages, 4u * (3 * 4 + 4 * 3));
}

TEST(Motifs, FftMessageCountBothPhases) {
  auto g = cycle_graph(16);
  auto t = routing::Tables::build(g);
  SimConfig cfg;
  cfg.concentration = 2;
  cfg.vcs = routing::required_vcs(cfg.algo, t.diameter());
  Simulator sim(g, t, cfg);
  FftAllToAll fft(4, 4, 2048);
  auto res = run_motif(sim, fft, 11);
  EXPECT_EQ(res.messages, 16u * 3u + 16u * 3u);
}

TEST(Motifs, UnbalancedFftNameAndShape) {
  FftAllToAll bal(4, 4), unbal(8, 2);
  EXPECT_EQ(bal.name(), "FFT(balanced)");
  EXPECT_EQ(unbal.name(), "FFT(unbalanced)");
  EXPECT_EQ(unbal.num_ranks(), 16u);
}

}  // namespace
}  // namespace sfly::sim
