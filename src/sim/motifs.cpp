#include "sim/motifs.hpp"

#include <stdexcept>

#include "sim/traffic.hpp"

namespace sfly::sim {

MotifContext::MotifContext(Simulator& sim, std::vector<EndpointId> placement,
                           double compute_ns)
    : sim_(sim), placement_(std::move(placement)), compute_ns_(compute_ns) {
  rank_of_.assign(sim_.num_endpoints(), ~0u);
  for (std::uint32_t r = 0; r < placement_.size(); ++r)
    rank_of_[placement_[r]] = r;
}

void MotifContext::send(std::uint32_t src_rank, std::uint32_t dst_rank,
                        std::uint32_t bytes, std::uint64_t tag) {
  sim_.send(placement_[src_rank], placement_[dst_rank], bytes,
            sim_.now() + compute_ns_, tag);
}

struct MotifDriver {
  static MotifResult run(Simulator& sim, Motif& motif, std::uint64_t seed,
                         double compute_ns) {
    auto placement = place_ranks(motif.num_ranks(), sim.num_endpoints(), seed);
    MotifContext ctx(sim, std::move(placement), compute_ns);
    sim.set_delivery_callback([&](const MessageRecord& rec) {
      motif.on_message(ctx, ctx.rank_of_[rec.dst], ctx.rank_of_[rec.src], rec.tag);
    });
    motif.start(ctx);
    if (!sim.run()) throw std::runtime_error("run_motif: simulation did not drain");
    if (!motif.complete())
      throw std::runtime_error("run_motif: motif stalled (dependency bug?)");
    MotifResult out;
    out.completion_ns = sim.completion_time();
    out.messages = sim.message_latency().count();
    out.mean_latency_ns = sim.message_latency().mean();
    return out;
  }
};

MotifResult run_motif(Simulator& sim, Motif& motif, std::uint64_t placement_seed,
                      double compute_ns) {
  return MotifDriver::run(sim, motif, placement_seed, compute_ns);
}

// ---------------------------------------------------------------- Halo3D-26

Halo3D26::Halo3D26(std::uint32_t nx, std::uint32_t ny, std::uint32_t nz,
                   std::uint32_t iterations, std::uint32_t face_bytes,
                   std::uint32_t edge_bytes, std::uint32_t corner_bytes)
    : nx_(nx), ny_(ny), nz_(nz), iters_(iterations), face_bytes_(face_bytes),
      edge_bytes_(edge_bytes), corner_bytes_(corner_bytes) {
  if (nx_ < 3 || ny_ < 3 || nz_ < 3)
    throw std::invalid_argument("Halo3D26: need at least 3 ranks per dimension "
                                "(periodic neighbors must be distinct)");
  received_.assign(num_ranks(), std::vector<std::uint16_t>(iters_, 0));
  rank_iter_.assign(num_ranks(), 0);
}

std::uint32_t Halo3D26::neighbor(std::uint32_t rank, int dx, int dy, int dz) const {
  std::uint32_t x = rank % nx_;
  std::uint32_t y = (rank / nx_) % ny_;
  std::uint32_t z = rank / (nx_ * ny_);
  x = (x + nx_ + dx) % nx_;
  y = (y + ny_ + dy) % ny_;
  z = (z + nz_ + dz) % nz_;
  return (z * ny_ + y) * nx_ + x;
}

void Halo3D26::exchange(MotifContext& ctx, std::uint32_t rank, std::uint32_t iter) {
  for (int dx = -1; dx <= 1; ++dx)
    for (int dy = -1; dy <= 1; ++dy)
      for (int dz = -1; dz <= 1; ++dz) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        int dims = std::abs(dx) + std::abs(dy) + std::abs(dz);
        std::uint32_t bytes = dims == 1   ? face_bytes_
                              : dims == 2 ? edge_bytes_
                                          : corner_bytes_;
        ctx.send(rank, neighbor(rank, dx, dy, dz), bytes, iter);
      }
}

void Halo3D26::start(MotifContext& ctx) {
  for (std::uint32_t r = 0; r < num_ranks(); ++r) exchange(ctx, r, 0);
}

void Halo3D26::on_message(MotifContext& ctx, std::uint32_t dst, std::uint32_t /*src*/,
                          std::uint64_t tag) {
  const std::uint32_t iter = static_cast<std::uint32_t>(tag);
  if (++received_[dst][iter] < 26) return;
  if (rank_iter_[dst] != iter) return;  // will be picked up when we reach it
  // Completed the halo for the current iteration; advance (possibly through
  // already-buffered future iterations).
  while (rank_iter_[dst] < iters_ && received_[dst][rank_iter_[dst]] >= 26) {
    ++rank_iter_[dst];
    if (rank_iter_[dst] < iters_)
      exchange(ctx, dst, rank_iter_[dst]);
    else
      ++done_;
  }
}

// ------------------------------------------------------------------ Sweep3D

Sweep3D::Sweep3D(std::uint32_t px, std::uint32_t py, std::uint32_t sweeps,
                 std::uint32_t message_bytes)
    : px_(px), py_(py), sweeps_(sweeps), bytes_(message_bytes) {
  if (px_ < 2 || py_ < 2) throw std::invalid_argument("Sweep3D: need a 2D array");
  received_.assign(num_ranks(), std::vector<std::uint16_t>(sweeps_, 0));
  rank_sweep_.assign(num_ranks(), 0);
}

namespace {
// Sweep directions cycle through the four corners of the 2D array.
constexpr int kSweepDir[4][2] = {{+1, +1}, {-1, +1}, {+1, -1}, {-1, -1}};
}  // namespace

std::uint32_t Sweep3D::deps_needed(std::uint32_t rank, std::uint32_t sweep) const {
  const int dx = kSweepDir[sweep % 4][0], dy = kSweepDir[sweep % 4][1];
  const std::uint32_t x = rank % px_, y = rank / px_;
  std::uint32_t deps = 0;
  if (dx > 0 ? x > 0 : x + 1 < px_) ++deps;  // upstream in x exists
  if (dy > 0 ? y > 0 : y + 1 < py_) ++deps;  // upstream in y exists
  return deps;
}

void Sweep3D::try_fire(MotifContext& ctx, std::uint32_t rank) {
  while (rank_sweep_[rank] < sweeps_) {
    const std::uint32_t s = rank_sweep_[rank];
    if (received_[rank][s] < deps_needed(rank, s)) return;
    // "Compute" then forward downstream.
    const int dx = kSweepDir[s % 4][0], dy = kSweepDir[s % 4][1];
    const std::uint32_t x = rank % px_, y = rank / px_;
    if (dx > 0 ? x + 1 < px_ : x > 0)
      ctx.send(rank, rank + (dx > 0 ? 1 : -1), bytes_, s);
    if (dy > 0 ? y + 1 < py_ : y > 0)
      ctx.send(rank, rank + (dy > 0 ? static_cast<int>(px_) : -static_cast<int>(px_)),
               bytes_, s);
    ++rank_sweep_[rank];
    if (rank_sweep_[rank] == sweeps_) ++done_;
  }
}

void Sweep3D::start(MotifContext& ctx) {
  for (std::uint32_t r = 0; r < num_ranks(); ++r) try_fire(ctx, r);
}

void Sweep3D::on_message(MotifContext& ctx, std::uint32_t dst, std::uint32_t /*src*/,
                         std::uint64_t tag) {
  ++received_[dst][tag];
  try_fire(ctx, dst);
}

// -------------------------------------------------------------- FFT a2a

FftAllToAll::FftAllToAll(std::uint32_t px, std::uint32_t py,
                         std::uint32_t bytes_per_pair)
    : px_(px), py_(py), bytes_(bytes_per_pair) {
  if (px_ < 2 || py_ < 2) throw std::invalid_argument("FftAllToAll: need a 2D grid");
  received_[0].assign(num_ranks(), 0);
  received_[1].assign(num_ranks(), 0);
  phase_.assign(num_ranks(), 0);
}

void FftAllToAll::alltoall(MotifContext& ctx, std::uint32_t rank, std::uint32_t phase) {
  const std::uint32_t x = rank % px_, y = rank / px_;
  if (phase == 0) {
    for (std::uint32_t xx = 0; xx < px_; ++xx)
      if (xx != x) ctx.send(rank, y * px_ + xx, bytes_, 0);
  } else {
    for (std::uint32_t yy = 0; yy < py_; ++yy)
      if (yy != y) ctx.send(rank, yy * px_ + x, bytes_, 1);
  }
}

void FftAllToAll::start(MotifContext& ctx) {
  for (std::uint32_t r = 0; r < num_ranks(); ++r) alltoall(ctx, r, 0);
}

void FftAllToAll::on_message(MotifContext& ctx, std::uint32_t dst, std::uint32_t /*src*/,
                             std::uint64_t tag) {
  const std::uint32_t ph = static_cast<std::uint32_t>(tag);
  ++received_[ph][dst];
  if (phase_[dst] == 0 && received_[0][dst] == px_ - 1) {
    phase_[dst] = 1;
    alltoall(ctx, dst, 1);
    // Column messages may have arrived before we entered phase 1.
    if (received_[1][dst] == py_ - 1) {
      phase_[dst] = 2;
      ++done_;
    }
  } else if (phase_[dst] == 1 && received_[1][dst] == py_ - 1) {
    phase_[dst] = 2;
    ++done_;
  }
}

}  // namespace sfly::sim
